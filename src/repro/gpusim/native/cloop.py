"""C lowering of megafused While loops.

The vector backend's :func:`repro.gpusim.fuse._fuse_loop` already
proves the interesting property — an eligible loop's condition and body
are straight-line ALU regions plus width-1 global loads, so the active
mask provably cannot change while the condition stays uniform.  This
module lowers exactly that class of loop to one C function executing
*every* iteration, including the loads, in a single call.

Execution model
---------------
Each instruction destination gets a **storage slot** at its inferred
shape class: the uniform classes (S scalars, C block columns) are C
scalars, lane rows (R) and full values (F) are 32-wide lane arrays in
the warp frame.  Because eligible loop bodies are lane-local (no
shuffles, barriers or atomics), execution is **warp-major**: each
32-lane warp runs its lanes to completion with all state in registers,
instead of sweeping every lane once per iteration the way the numpy
megafused loop must.  The main pass runs each warp to its uniform trip
count (the iteration its condition stops being all-true), counting load
transactions as it goes, and **optimistically commits** the warp's
state whenever it stopped exactly at the running minimum — the common
grid-stride case where every warp runs the same number of iterations
therefore executes in a single sweep.  Only when a warp invalidates the
optimism (a later warp stops earlier, or overshoots the minimum, or
hits the iteration cap) does a redo pass re-run every warp capped at
the final minimum; out-of-bounds discovery gets its own replay pass
either way.

Loop-carried registers read their previous iteration's slot; a register
with a single in-loop writer of matching class aliases its entry slot
directly (the classic ``acc = acc + t`` updates in place), all others
get an explicit carry copy at body end, mirroring the vector loop's
SSA-local carries.  Loads count 128-byte segment transactions per
32-lane warp exactly like ``_count_segments_sorted`` — a monotonic fast
path for coalesced rows, an insertion-sorted distinct count otherwise.

Exit protocol
-------------
The C function returns 0 (condition uniformly false), 1 (first mixed
condition — the caller resumes the engine-exact divergent
continuation), 2 (out-of-bounds load; *no* register flush, matching
the vector loop's raise-without-flush) or 3 (iteration cap).  Iteration
/ evaluation / per-site load counters come back through the metadata
array so the Python glue can replay the vector loop's event accounting
(``inst.alu`` per condition evaluation including the final one, per-
completed-body ALU counts, per-site transaction and byte counters)
outside the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...vir.instructions import Reg
from .cgen import (
    C,
    F,
    R,
    S,
    _DT_C,
    _NOTCONST,
    Planner,
    Val,
    _nonzero,
)

#: Return codes of a generated loop function.
RC_CLEAN, RC_MIXED, RC_OOB, RC_CAP = 0, 1, 2, 3

#: Fixed metadata indices (input strides / site meta / outputs follow).
M_B, M_T, M_CAP = 0, 1, 2
M_FIXED = 3

#: Output section layout, relative to the plan's ``m_out`` base.
OUT_ITERS, OUT_EVALS, OUT_COMPLETED = 0, 1, 2
OUT_ERR_SITE, OUT_ERR_LO, OUT_ERR_HI = 3, 4, 5
OUT_N_FIXED = 6  # then (trans, execs) per load site


@dataclass
class SlotStorage:
    """One storage location: a C local (S) or caller buffer (R/C/F)."""

    name: str  # C identifier
    dt: str
    kl: int


@dataclass
class LdSite:
    """One width-1 global load inside the loop body."""

    buf: str
    idx_val: Val
    dst_slot: SlotStorage
    index: int


class _LoopPlanner(Planner):
    """Planner emitting storage-slot statements instead of SSA locals."""

    def __init__(self, env, carried_names):
        super().__init__(env)
        self.carried_names = carried_names
        self.slots = []          # R/C/F SlotStorage, P-order
        self.s_decls = []        # S-class SlotStorage (C locals)
        self.entry_env = dict(env)
        self.alias = {}          # carried reg name -> entry SlotStorage
        self.code = []           # (kl, line) of the current section
        self.body_layout = []    # list[(kl, line)] chunks | LdSite
        self.last_slot = None
        self._ncounter = 0

    def _storage(self, dt, kl, prefix="v"):
        self._ncounter += 1
        st = SlotStorage(f"{prefix}{self._ncounter}", dt, kl)
        if kl == S:
            self.s_decls.append(st)
        else:
            self.slots.append(st)
        return st

    @staticmethod
    def read_slot(st: SlotStorage) -> str:
        # Warp-frame storage: scalars for the uniform classes (S is
        # function-scoped, C per-warp), 32-wide lane arrays for R/F.
        if st.kl in (S, C):
            return st.name
        return f"{st.name}[l]"

    def input_val(self, sl):
        k = self.inputs.index(sl)
        return Val(input_expr(k, sl.kl), sl.dt, sl.kl)

    def read_reg(self, operand):
        val = self.bind.get(operand.name)
        if val is not None:
            return val
        entry = self.entry_env.get(operand.name)
        if entry is None or entry[0] is None:
            self.ok = False
            return Val("0", None, F)
        dt, kl = entry
        sl = self.slot("reg", operand.name, str(operand), dt, kl)
        if operand.name in self.carried_names:
            st = self.alias.get(operand.name)
            if st is None:
                st = self._storage(dt, kl, prefix="li")
                self.alias[operand.name] = st
            return Val(self.read_slot(st), dt, kl)
        return self.input_val(sl)

    def emit(self, instr, val):
        if val.const is not _NOTCONST or val.dt is None:
            self.last_slot = None
            self.write_reg(instr.dst, val)
            return
        st = self._storage(val.dt, val.kl)
        self.code.append((val.kl, f"{self.read_slot(st)} = {val.expr};"))
        self.write_reg(instr.dst, Val(self.read_slot(st), val.dt, val.kl))
        self.last_slot = st


def _maybe_alias(p: _LoopPlanner, instr, writers):
    """Redirect a single-writer carried register's defining statement to
    its entry slot, eliding the per-iteration carry copy (and the extra
    buffer) — the in-place update is exact because every statement is
    elementwise with aligned indices."""
    name = instr.dst.name
    st = p.alias.get(name)
    if (
        st is None
        or name not in p.carried_names
        or writers.get(name) != 1
    ):
        return
    val = p.bind.get(name)
    last = p.last_slot
    if (
        val is None
        or val.const is not _NOTCONST  # const binding: no statement
        or last is None
        or p.read_slot(last) != val.expr
        or val.dt != st.dt
        or last.kl != st.kl
    ):
        return
    kl, line = p.code[-1]
    old = p.read_slot(last)
    p.code[-1] = (kl, p.read_slot(st) + line[len(old):])
    p.bind[name] = Val(p.read_slot(st), val.dt, val.kl)
    if last in p.slots:
        p.slots.remove(last)
    elif last in p.s_decls:
        p.s_decls.remove(last)
    p.last_slot = st


def _carried_and_writers(cond_instrs, body_instrs, cond_reg):
    """Registers read before their first in-loop write (the vector
    loop's preload set, restricted to ones also written — those need a
    carry slot) plus per-register writer counts, over the exact
    read/write stream ``_fuse_loop`` analyzes."""
    from ..fuse import _reg_operand_objs

    stream = []
    for i in cond_instrs:
        stream.extend(("r", op) for op in _reg_operand_objs(i))
        stream.append(("w", i.dst))
    stream.append(("r", cond_reg))
    for i in body_instrs:
        stream.extend(("r", op) for op in _reg_operand_objs(i))
        stream.append(("w", i.dst))
    written = set()
    first_reads = []
    writers = {}
    for ev, op in stream:
        if ev == "w":
            written.add(op.name)
            writers[op.name] = writers.get(op.name, 0) + 1
        elif op.name not in written and op.name not in first_reads:
            first_reads.append(op.name)
    carried = [n for n in first_reads if n in writers]
    return carried, writers


class LoopPlan:
    """Everything the glue and the C emitter need for one loop."""

    def __init__(self, planner, sites, flush_always, flush_body,
                 cond_val, cond_slot, n_cond, n_body_alu):
        self.planner = planner
        self.inputs = planner.inputs
        self.slots = planner.slots
        self.s_decls = planner.s_decls
        self.alias = planner.alias
        self.sites = sites
        self.flush_always = flush_always    # (reg name, Val)
        self.flush_body = flush_body        # (reg name, Val)
        self.cond_val = cond_val
        self.cond_slot = cond_slot
        self.n_cond = n_cond
        self.n_body_alu = n_body_alu
        self.fname = ""
        self.source = ""
        self.m_out = 0
        self.m_len = 0

    @property
    def carried(self):
        return self.alias


def _plan_pass(entry, carried, writers, instr, cond_instrs, segments):
    """One planning pass against a candidate entry environment;
    returns a LoopPlan or None."""
    p = _LoopPlanner(dict(entry), set(carried))
    for i in cond_instrs:
        p.gen_instr(i)
        if not p.ok:
            return None
        _maybe_alias(p, i, writers)
    cond_val = p.operand(instr.cond)
    if cond_val.dt is None or not p.ok:
        return None
    cond_binding = dict(p.bind)
    p.code_cond = list(p.code)
    p.code.clear()

    sites = []
    n_body_alu = 0
    for kind, bi, _closure in segments:
        if kind == "alu":
            p.gen_instr(bi)
            if not p.ok:
                return None
            _maybe_alias(p, bi, writers)
            n_body_alu += 1
            continue
        idx_val = p.operand(bi.idx)
        if idx_val.dt != "i" or not p.ok:
            return None
        if p.code:
            p.body_layout.append(list(p.code))
            p.code.clear()
        # Loads always produce full-shape float64 (engine semantics);
        # a single-writer carried destination updates its entry slot.
        st = p.alias.get(bi.dst.name)
        if not (
            st is not None
            and writers.get(bi.dst.name) == 1
            and st.dt == "f"
            and st.kl == F
        ):
            st = p._storage("f", F, prefix="ld")
        p.write_reg(bi.dst, Val(p.read_slot(st), "f", F))
        p.last_slot = st
        site = LdSite(bi.buf, idx_val, st, len(sites))
        sites.append(site)
        p.body_layout.append(site)
    if p.code:
        p.body_layout.append(list(p.code))
        p.code.clear()

    # Carries: un-aliased carried registers copy their final binding
    # back into the entry slot at body end (vector's `_li = sym` lines).
    carry_code = []
    for name in carried:
        st = p.alias.get(name)
        if st is None:
            continue
        val = p.bind.get(name)
        if val is None or val.expr == p.read_slot(st):
            continue  # never rebound, or aliased in place
        if val.dt is None or val.dt != st.dt:
            return None
        if (val.kl | st.kl) != st.kl:
            # Class widened inside the body: the plan_loop fixed point
            # sees the same mismatch on the entry fact, widens it and
            # re-plans, so this pass's output is discarded anyway.
            continue
        carry_code.append((st.kl, f"{p.read_slot(st)} = {val.expr};"))
    p.code_carry = carry_code

    # Condition mirror: the divergent continuation needs the condition
    # value — scalars surface through the S-out block, array classes
    # through a dedicated bool-typed buffer written per evaluation.
    cond_slot = p._storage("b", cond_val.kl, prefix="cnd")

    flush_always, flush_body = [], []
    for name, val in p.bind.items():
        if val.dt is None:
            return None
        cv = cond_binding.get(name)
        if cv is not None:
            if cv.dt is None:
                return None
            flush_always.append((name, cv))
        else:
            flush_body.append((name, val))

    return LoopPlan(
        p, sites, flush_always, flush_body, cond_val, cond_slot,
        len(cond_instrs), n_body_alu,
    )


def plan_loop(index, instr, cond_trace, body_trace, env):
    """Plan one megafused loop against the entry environment, or None.

    Mirrors ``_fuse_loop`` eligibility, then runs a small fixed point
    over the carried registers' (dtype, class) facts: a loop whose
    carried dtypes do not stabilize (the interpreter would promote
    dynamically across iterations) is not lowered.  ``env`` is always
    updated — with the plan's flush facts on success, conservative
    unknowns otherwise.
    """
    cond_instrs = []
    for closure in cond_trace:
        instrs = getattr(closure, "_instrs", None)
        if instrs is None:
            cond_instrs = None
            break
        cond_instrs.extend(instrs)
    segments = [] if cond_instrs and isinstance(instr.cond, Reg) else None
    if segments is not None:
        for closure in body_trace:
            instrs = getattr(closure, "_instrs", None)
            if instrs is not None:
                segments.extend(("alu", i, None) for i in instrs)
            elif (
                getattr(closure, "_specialized", None) == "ld_global"
                and closure._instr.width == 1
                and isinstance(closure._instr.idx, Reg)
            ):
                segments.append(("ld", closure._instr, closure))
            else:
                segments = None
                break
    if not segments:
        poison_loop_env(cond_trace, body_trace, env)
        return None

    body_instrs = [seg[1] for seg in segments]
    carried, writers = _carried_and_writers(
        cond_instrs, body_instrs, instr.cond
    )

    entry = dict(env)
    plan = None
    for _ in range(5):
        p = _plan_pass(entry, carried, writers, instr, cond_instrs,
                       segments)
        if p is None:
            poison_loop_env(cond_trace, body_trace, env)
            return None
        changed = False
        for name in carried:
            e_dt, e_kl = entry.get(name, (None, F))
            val = p.planner.bind.get(name)
            if val is None:
                continue  # never rebound: entry fact stands
            if val.dt != e_dt:
                poison_loop_env(cond_trace, body_trace, env)
                return None  # dtype does not stabilize
            if val.kl | e_kl != e_kl:
                entry[name] = (e_dt, val.kl | e_kl)
                changed = True
        if not changed:
            plan = p
            break
    if plan is None:
        poison_loop_env(cond_trace, body_trace, env)
        return None

    plan.fname = f"loop{index}"
    # Entry facts for the glue's input guards come from the fixed point.
    for sl in plan.inputs:
        if sl.kind == "reg" and sl.name in entry:
            sl.dt, sl.kl = entry[sl.name]
    plan.source = _loop_source(plan)
    # Environment after the loop: condition-phase registers always hold
    # the final evaluation's value; body-only registers merge with the
    # zero-iteration entry state.
    for name, val in plan.flush_always:
        env[name] = (val.dt, val.kl)
    for name, val in plan.flush_body:
        pre = env.get(name)
        if pre is None:
            env[name] = (val.dt, val.kl)
        elif pre[0] == val.dt:
            env[name] = (val.dt, pre[1] | val.kl)
        else:
            env[name] = (None, F)
    return plan


def poison_loop_env(cond_trace, body_trace, env):
    """Conservative environment effect of a loop executed by its vector
    closure: every register it may write becomes unknown/full."""
    from ..fuse import trace_instrs

    for i in trace_instrs(list(cond_trace) + list(body_trace)):
        dst = getattr(i, "dst", None)
        if isinstance(dst, Reg):
            env[dst.name] = (None, F)
        elif isinstance(dst, list):
            for d in dst:
                if isinstance(d, Reg):
                    env[d.name] = (None, F)

# ---------------------------------------------------------------------
# C source emission (warp-major two-pass)
# ---------------------------------------------------------------------
#
# Eligible loop bodies are lane-local by construction (straight-line
# ALU plus width-1 loads — no shuffles, barriers or atomics), so each
# 32-lane warp can run its lanes to completion with all state in
# registers instead of sweeping every lane per iteration:
#
#   scan pass    every warp runs until its local condition stops being
#                all-true, yielding its uniform trip count t_w; the
#                global lockstep loop runs exactly U = min(t_w) - 1
#                full iterations.  Out-of-bounds loads are recorded
#                (first (iteration, site) per warp) and replaced by
#                0.0 — iterations past the lockstep exit are discarded,
#                so their values never surface.
#   commit pass  every warp re-runs capped at U, counting 128-byte
#                segment transactions per iteration, then evaluates
#                the condition one final time (the engine's last,
#                not-all-true evaluation), and commits slot storage
#                and the condition mirror to the caller's buffers.
#   oob pass     only when the earliest recorded fault lands inside
#                the lockstep extent: re-run to the faulting iteration,
#                count events for the sites that executed before the
#                fault, and collect the all-lane index extremes the
#                engine puts in its error message.

_I64MAX = "(int64_t)0x7fffffffffffffffLL"
_I64MIN = "(-0x7fffffffffffffffLL - 1)"


def input_expr(k: int, kl: int) -> str:
    """Warp-frame expression for hoisted input ``k`` at class ``kl``."""
    if kl in (S, C):
        return f"in{k}"
    return f"in{k}[l]"


def _truthy(val: Val) -> str:
    return _nonzero(val.expr, val.dt)


def _emit_warp_stmts(stmts, L, pad):
    """Emit (class, line) statements in program order; consecutive
    lane-class (R/F) statements share one 32-lane loop, uniform-class
    (S/C) statements execute once per warp."""
    i = 0
    while i < len(stmts):
        scalar = stmts[i][0] in (S, C)
        j = i
        while j < len(stmts) and (stmts[j][0] in (S, C)) == scalar:
            j += 1
        if scalar:
            for _, line in stmts[i:j]:
                L.append(pad + line)
        else:
            L.append(pad + "for (int64_t l = 0; l < 32; l++) {")
            for _, line in stmts[i:j]:
                L.append(pad + "  " + line)
            L.append(pad + "}")
        i = j


def _entry_stmts(plan):
    """Carried slots load their entry values from the hoisted inputs."""
    out = []
    for name, st in plan.carried.items():
        k = next(
            i for i, sl in enumerate(plan.inputs)
            if sl.kind == "reg" and sl.name == name
        )
        src = input_expr(k, plan.inputs[k].kl)
        out.append((st.kl, f"{_LoopPlanner.read_slot(st)} = {src};"))
    return out


# C element type per buffer dtype code (same order as cgen.BUF_CODES /
# the PREAMBLE's nb_load switch); the main pass emits one gather loop
# per code so the load is a direct typed access instead of a
# per-element dispatch the compiler cannot hoist.
_BUF_CTYPES = ("float", "double", "int32_t", "int64_t", "uint32_t",
               "uint64_t", "int16_t", "uint16_t", "int8_t", "uint8_t")


def _emit_site_main(s: LdSite, L, pad):
    """Main-pass load with a coalesced fast path.

    The warp's 32 indices are materialized once, then checked for the
    unit-stride pattern ``x0, x0+1, …, x0+31`` with an XOR-accumulate
    (branch-free, vectorizable).  A coalesced in-bounds warp takes a
    contiguous load — one specialized, vectorizable loop per buffer
    dtype code — and its transaction count in closed form (consecutive
    sorted indices span ``last>>shift - first>>shift + 1`` segments).
    Everything else falls to the guarded generic gather, which records
    the warp's first (iteration, site) fault — faulting lanes read 0.0;
    any iteration that could observe the placeholder is past the
    lockstep exit — and counts distinct 128-byte segments exactly like
    ``_count_segments_sorted``."""
    k = s.index
    dst = f"{s.dst_slot.name}[l]"
    L.append(pad + "{ int64_t xv_[32]; int64_t d;")
    L.append(pad + "  for (int64_t l = 0; l < 32; l++)")
    L.append(pad + f"    xv_[l] = {s.idx_val.expr};")
    L.append(pad + "  const int64_t x0_ = xv_[0];")
    L.append(pad + "  int64_t nu_ = 0;")
    L.append(pad + "  for (int64_t l = 0; l < 32; l++)")
    L.append(pad + "    nu_ |= xv_[l] ^ (x0_ + l);")
    L.append(pad + f"  if (nu_ == 0 && x0_ >= 0 && x0_ + 31 < blen{k}) {{")
    L.append(pad + f"    switch (bcode{k}) {{")
    for code, ct in enumerate(_BUF_CTYPES):
        load = f"(double)((const {ct} *)buf{k})[x0_ + l]"
        if ct == "double":
            load = f"((const double *)buf{k})[x0_ + l]"
        L.append(pad + f"    case {code}:")
        L.append(pad + "      for (int64_t l = 0; l < 32; l++)")
        L.append(pad + f"        {dst} = {load};")
        L.append(pad + "      break;")
    L.append(pad + "    }")
    L.append(pad + f"    d = ((x0_ + 31) >> shift{k})"
                   f" - (x0_ >> shift{k}) + 1;")
    L.append(pad + "  } else {")
    L.append(pad + "    int64_t seg[32]; int mono = 1; d = 1;")
    L.append(pad + "    for (int64_t l = 0; l < 32; l++) {")
    L.append(pad + "      const int64_t x = xv_[l];")
    L.append(pad + f"      if (x < 0 || x >= blen{k}) {{")
    L.append(pad + f"        if (wo_it == {_I64MAX})"
                   f" {{ wo_it = it_; wo_site = {k}; }}")
    L.append(pad + f"        {dst} = 0.0;")
    L.append(pad + "      } else {")
    L.append(pad + f"        {dst} = nb_load(buf{k}, bcode{k}, x);")
    L.append(pad + "      }")
    L.append(pad + f"      const int64_t sg = x >> shift{k};")
    L.append(pad + "      seg[l] = sg;")
    L.append(pad + "      if (l) { if (sg < seg[l - 1]) mono = 0;"
                   " d += (sg != seg[l - 1]); }")
    L.append(pad + "    }")
    L.append(pad + "    if (!mono) {")
    L.append(pad + "      for (int64_t a = 1; a < 32; a++) {")
    L.append(pad + "        const int64_t key = seg[a]; int64_t b = a;")
    L.append(pad + "        while (b > 0 && seg[b - 1] > key)"
                   " { seg[b] = seg[b - 1]; b--; }")
    L.append(pad + "        seg[b] = key;")
    L.append(pad + "      }")
    L.append(pad + "      d = 1;")
    L.append(pad + "      for (int64_t l = 1; l < 32; l++)")
    L.append(pad + "        if (seg[l] != seg[l - 1]) d += 1;")
    L.append(pad + "    }")
    L.append(pad + "  }")
    L.append(pad + f"  wtrans{k} += d;")
    L.append(pad + "}")


def _emit_site_exec(s: LdSite, L, pad):
    """Commit-pass load: unguarded gather (the scan proved every
    executed iteration in-bounds) plus the per-warp distinct 128-byte
    segment count — monotonic fast path, insertion sort otherwise."""
    k = s.index
    dst = f"{s.dst_slot.name}[l]"
    L.append(pad + "{ int64_t seg[32]; int mono = 1;")
    L.append(pad + "  for (int64_t l = 0; l < 32; l++) {")
    L.append(pad + f"    const int64_t x = {s.idx_val.expr};")
    L.append(pad + f"    {dst} = nb_load(buf{k}, bcode{k}, x);")
    L.append(pad + f"    seg[l] = x >> shift{k};")
    L.append(pad + "    if (l && seg[l] < seg[l - 1]) mono = 0;")
    L.append(pad + "  }")
    L.append(pad + "  if (!mono) {")
    L.append(pad + "    for (int64_t a = 1; a < 32; a++) {")
    L.append(pad + "      const int64_t key = seg[a]; int64_t b = a;")
    L.append(pad + "      while (b > 0 && seg[b - 1] > key)"
                   " { seg[b] = seg[b - 1]; b--; }")
    L.append(pad + "      seg[b] = key;")
    L.append(pad + "    }")
    L.append(pad + "  }")
    L.append(pad + "  int64_t d = 1;")
    L.append(pad + "  for (int64_t l = 1; l < 32; l++)")
    L.append(pad + "    if (seg[l] != seg[l - 1]) d += 1;")
    L.append(pad + f"  trans{k} += d;")
    L.append(pad + "}")


def _emit_site_bounds(s: LdSite, L, pad):
    """Fault-site index extremes across the warp's lanes (the engine
    reports the all-lane min/max in its error message)."""
    L.append(pad + "for (int64_t l = 0; l < 32; l++) {")
    L.append(pad + f"  const int64_t x = {s.idx_val.expr};")
    L.append(pad + "  if (x < err_lo) err_lo = x;")
    L.append(pad + "  if (x > err_hi) err_hi = x;")
    L.append(pad + "}")


def _emit_body(plan, L, pad, mode):
    for chunk in plan.planner.body_layout:
        if isinstance(chunk, list):
            _emit_warp_stmts(chunk, L, pad)
        elif mode == "main":
            _emit_site_main(chunk, L, pad)
        else:
            _emit_site_exec(chunk, L, pad)


def _emit_commit_tail(plan, L, pad):
    """Divergence-mirror write plus the storage commit of every slot
    (C-class to ``g_{name}[wi]``, lane classes to their row/full
    coordinates); shared by the main pass (eager per-warp commit) and
    the redo pass."""
    cv = plan.cond_val
    cs = plan.cond_slot
    mirror = _LoopPlanner.read_slot(cs)
    if cs.kl in (S, C):
        L.append(pad + f"{mirror} = (uint8_t)({_truthy(cv)});")
    else:
        L.append(pad + "for (int64_t l = 0; l < 32; l++)")
        L.append(pad + f"  {mirror} = (uint8_t)({_truthy(cv)});")
    for st in plan.slots:
        if st.kl == C:
            L.append(pad + f"g_{st.name}[wi] = {st.name};")
    lane_slots = [st for st in plan.slots if st.kl in (R, F)]
    if lane_slots:
        L.append(pad + "for (int64_t l = 0; l < 32; l++) {")
        for st in lane_slots:
            at = "jb + l" if st.kl == R else "wi * T + jb + l"
            L.append(pad + f"  g_{st.name}[{at}] = {st.name}[l];")
        L.append(pad + "}")


def _emit_pass(plan, L, mode):
    """One warp-major sweep: ``main`` (trip counts + fault discovery +
    eager commit when the warp stops exactly at the running minimum),
    ``commit`` (capped re-run after the optimistic commit was
    invalidated) or ``oob`` (re-run to the fault, partial-iteration
    events, index extremes)."""
    sites = plan.sites
    cv = plan.cond_val
    w = "        " if mode == "oob" else "    "
    L.append(w + "for (int64_t w_ = 0; w_ < NW; w_++) {")
    p = w + "  "
    L.append(p + "const int64_t wi = w_ / WPB, jb = (w_ % WPB) * 32;")
    L.append(p + "(void)wi; (void)jb;")
    lane_ins = []
    for k, sl in enumerate(plan.inputs):
        ct = _DT_C[sl.dt]
        if sl.kl == S:
            L.append(p + f"const {ct} in{k} = p{k}[0];")
        elif sl.kl == C:
            L.append(p + f"const {ct} in{k} = p{k}[wi * s{k}a];")
        else:
            L.append(p + f"{ct} in{k}[32];")
            lane_ins.append(k)
    if lane_ins:
        L.append(p + "for (int64_t l = 0; l < 32; l++) {")
        for k in lane_ins:
            if plan.inputs[k].kl == R:
                L.append(p + f"  in{k}[l] = p{k}[(jb + l) * s{k}b];")
            else:
                L.append(p + f"  in{k}[l] = "
                             f"p{k}[wi * s{k}a + (jb + l) * s{k}b];")
        L.append(p + "}")
    for st in plan.slots:
        ct = _DT_C[st.dt]
        if st.kl == C:
            L.append(p + f"{ct} {st.name} = 0;")
        else:
            L.append(p + f"{ct} {st.name}[32];")
    _emit_warp_stmts(_entry_stmts(plan), L, p)

    if mode == "main":
        if sites:
            L.append(p + f"int64_t wo_it = {_I64MAX}, wo_site = 0;")
        for s in sites:
            L.append(p + f"int64_t wtrans{s.index} = 0;")
        L.append(p + "int64_t t_w = CAP + 2, nt_w = 0;")
        L.append(p + "for (int64_t it_ = 1; it_ <= CAP + 1; it_++) {")
        b = p + "  "
        _emit_warp_stmts(plan.planner.code_cond, L, b)
        L.append(b + "int64_t nt = 0;")
        if cv.kl in (S, C):
            L.append(b + f"nt = ({_truthy(cv)}) ? 32 : 0;")
        else:
            L.append(b + "for (int64_t l = 0; l < 32; l++)")
            L.append(b + f"  nt += ({_truthy(cv)}) ? 1 : 0;")
        L.append(b + "if (nt < 32) { t_w = it_; nt_w = nt; break; }")
        _emit_body(plan, L, b, "main")
        _emit_warp_stmts(plan.planner.code_carry, L, b)
        L.append(p + "}")
        # An earlier warp committed against a larger minimum (t_w < U
        # with predecessors), this warp overshot the minimum
        # (t_w > U), or the warp never stopped inside the cap: the
        # optimistic commits are stale and the redo pass re-runs
        # every warp at the final U_run.
        L.append(p + "if (t_w < U) { if (w_) redo = 1;"
                     " U = t_w; nmin = 1; allfalse = (nt_w == 0); }")
        L.append(p + "else if (t_w == U)"
                     " { nmin += 1; if (nt_w) allfalse = 0; }")
        L.append(p + "else redo = 1;")
        L.append(p + "if (t_w >= CAP + 2) redo = 1;")
        if sites:
            L.append(p + "if (wo_it < oob_it ||"
                         " (wo_it == oob_it && wo_site < oob_site))")
            L.append(p + "  { oob_it = wo_it; oob_site = wo_site; }")
        # Eager commit: the warp stopped exactly at the running
        # minimum, so its registers already hold the state the commit
        # pass would recompute — including the failing evaluation's
        # condition-phase bindings for the divergence mirror.
        L.append(p + "if (!redo && t_w == U) {")
        _emit_commit_tail(plan, L, p + "  ")
        for s in sites:
            L.append(p + f"  trans{s.index} += wtrans{s.index};")
        L.append(p + "}")
    elif mode == "commit":
        L.append(p + "for (int64_t it_ = 1; it_ <= U_run; it_++) {")
        b = p + "  "
        _emit_warp_stmts(plan.planner.code_cond, L, b)
        _emit_body(plan, L, b, "commit")
        _emit_warp_stmts(plan.planner.code_carry, L, b)
        L.append(p + "}")
        # The final, not-all-true evaluation: condition-phase bindings
        # and the divergence mirror come from here.
        _emit_warp_stmts(plan.planner.code_cond, L, p)
        _emit_commit_tail(plan, L, p)
    else:  # oob
        L.append(p + "for (int64_t it_ = 1; it_ <= oob_it; it_++) {")
        b = p + "  "
        _emit_warp_stmts(plan.planner.code_cond, L, b)
        L.append(b + "if (it_ == oob_it) {")
        bb = b + "  "
        last_site = -1
        for chunk in plan.planner.body_layout:
            if isinstance(chunk, list):
                L.append(bb + f"if (oob_site > {last_site}) {{")
                _emit_warp_stmts(chunk, L, bb + "  ")
                L.append(bb + "}")
            else:
                k = chunk.index
                L.append(bb + f"if (oob_site > {k}) {{")
                _emit_site_exec(chunk, L, bb + "  ")
                L.append(bb + "} else {")
                _emit_site_bounds(chunk, L, bb + "  ")
                L.append(bb + "  goto oob_done;")
                L.append(bb + "}")
                last_site = k
        L.append(b + "} else {")
        _emit_body(plan, L, b + "  ", "commit")
        _emit_warp_stmts(plan.planner.code_carry, L, b + "  ")
        L.append(b + "}")
        L.append(p + "}")
        L.append(p + "oob_done: ;")
    L.append(w + "}")


def _loop_source(plan: LoopPlan) -> str:
    inputs = plan.inputs
    slots = plan.slots
    sites = plan.sites
    nin = len(inputs)
    # P layout: inputs | slots | per-site buffer | S-out block
    p_site = nin + len(slots)
    p_sout = p_site + len(sites)
    # M layout: B,T,CAP | input strides | per-site (len, code) | outputs
    m_site = M_FIXED + 2 * nin
    m_out = m_site + 2 * len(sites)
    plan.m_out = m_out
    plan.m_len = m_out + OUT_N_FIXED + 2 * len(sites)

    L = [f"EXPORT int64_t {plan.fname}(void **P, int64_t *M)", "{"]
    L.append(f"    const int64_t B = M[{M_B}], T = M[{M_T}], "
             f"CAP = M[{M_CAP}];")
    L.append("    const int64_t WPB = T / 32, NW = B * WPB;")
    L.append("    (void)B;")
    for k, sl in enumerate(inputs):
        ct = _DT_C[sl.dt]
        L.append(f"    const {ct} *p{k} = (const {ct} *)P[{k}];")
        L.append(f"    const int64_t s{k}a = M[{M_FIXED + 2 * k}], "
                 f"s{k}b = M[{M_FIXED + 2 * k + 1}];")
        L.append(f"    (void)s{k}a; (void)s{k}b;")
    for n, st in enumerate(slots):
        ct = _DT_C[st.dt]
        L.append(f"    {ct} *g_{st.name} = ({ct} *)P[{nin + n}];")
    for s in sites:
        L.append(f"    const void *buf{s.index} = P[{p_site + s.index}];")
        L.append(f"    const int64_t blen{s.index} = "
                 f"M[{m_site + 2 * s.index}];")
        L.append(f"    const int64_t bcode{s.index} = "
                 f"M[{m_site + 2 * s.index + 1}];")
        L.append(f"    int64_t shift{s.index} = 7;")
        L.append(f"    {{ int64_t v_ = nb_item[bcode{s.index}];"
                 f" while (v_ > 1) {{ v_ >>= 1; shift{s.index} -= 1; }} }}")
    for st in plan.s_decls:
        L.append(f"    {_DT_C[st.dt]} {st.name} = 0;")
    L.append("    int64_t it = 0, evals = 0, completed = 0, rc = 0;")
    L.append("    int64_t err_site = 0, err_lo = 0, err_hi = 0;")
    for s in sites:
        L.append(f"    int64_t trans{s.index} = 0, execs{s.index} = 0;")

    L.append("    int64_t U = CAP + 2, nmin = 0, allfalse = 1;")
    L.append("    int64_t redo = 0;")
    if sites:
        L.append(f"    int64_t oob_it = {_I64MAX}, oob_site = 0;")
    _emit_pass(plan, L, "main")

    L.append("    int64_t U_run;")
    L.append(f"    if (U >= CAP + 2) {{ rc = {RC_CAP}; U_run = CAP; }}")
    L.append(f"    else if (nmin == NW && allfalse)"
             f" {{ rc = {RC_CLEAN}; U_run = U - 1; }}")
    L.append(f"    else {{ rc = {RC_MIXED}; U_run = U - 1; }}")
    if sites:
        L.append("    if (oob_it <= U_run) {")
        L.append(f"        rc = {RC_OOB}; err_site = oob_site;")
        L.append(f"        err_lo = {_I64MAX}; err_hi = {_I64MIN};")
        for s in sites:
            L.append(f"        trans{s.index} = 0;")
        _emit_pass(plan, L, "oob")
        for s in sites:
            L.append(f"        execs{s.index} = oob_it - 1 + "
                     f"((int64_t){s.index} < oob_site ? 1 : 0);")
        L.append("        it = oob_it; evals = oob_it;"
                 " completed = oob_it - 1;")
        L.append("        goto out;")
        L.append("    }")
    L.append("    if (redo) {")
    for s in sites:
        L.append(f"    trans{s.index} = 0;")
    _emit_pass(plan, L, "commit")
    L.append("    }")
    L.append("    evals = U_run + 1; completed = U_run;")
    L.append(f"    it = (rc == {RC_CAP}) ? CAP + 1 : U_run;")
    for s in sites:
        L.append(f"    execs{s.index} = U_run;")

    L.append("out:")
    L.append(f"    M[{m_out + OUT_ITERS}] = it;")
    L.append(f"    M[{m_out + OUT_EVALS}] = evals;")
    L.append(f"    M[{m_out + OUT_COMPLETED}] = completed;")
    L.append(f"    M[{m_out + OUT_ERR_SITE}] = err_site;")
    L.append(f"    M[{m_out + OUT_ERR_LO}] = err_lo;")
    L.append(f"    M[{m_out + OUT_ERR_HI}] = err_hi;")
    for s in sites:
        L.append(f"    M[{m_out + OUT_N_FIXED + 2 * s.index}] = "
                 f"trans{s.index};")
        L.append(f"    M[{m_out + OUT_N_FIXED + 2 * s.index + 1}] = "
                 f"execs{s.index};")
    for n, st in enumerate(plan.s_decls):
        ct = _DT_C[st.dt]
        L.append(f"    (({ct} *)P[{p_sout + n}])[0] = {st.name};")
    L.append("    return rc;")
    L.append("}")
    return "\n".join(L) + "\n"
