"""Native C codegen backend: fused regions, megafused loops and
uniform shuffles lowered to per-kernel compiled shared libraries.

See :mod:`repro.gpusim.native.lower` for the lowering walk,
:mod:`repro.gpusim.native.cgen` / :mod:`repro.gpusim.native.cloop` for
the C emitters, and :mod:`repro.gpusim.native.toolchain` for compiler
discovery and the ``.so`` disk cache.
"""

from .lower import NativeKernel, lower_kernel
from .toolchain import (
    NativeCompileError,
    NativeUnavailable,
    native_available,
    reset_toolchain_cache,
    unavailable_reason,
)

__all__ = [
    "NativeKernel",
    "lower_kernel",
    "NativeCompileError",
    "NativeUnavailable",
    "native_available",
    "reset_toolchain_cache",
    "unavailable_reason",
]
