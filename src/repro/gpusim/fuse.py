"""Region fusion: compile straight-line trace runs into mega-expressions.

The compiled backend (:mod:`repro.gpusim.compile`) already removes the
per-instruction *dispatch*, but still pays one Python call — and one
whole-block numpy operation — per VIR instruction per trace execution.
This module walks a :class:`~repro.gpusim.compile.CompiledKernel`
closure trace and groups maximal straight-line runs of data-parallel
ALU instructions — ``BinOp``/``UnOp``/``Mov``/``Sel``/``Special``/
``LdParam`` — into *regions*. Each region of k >= 2 instructions is
compiled (via ``compile()`` of a synthesized Python source string) into
**one** generated function evaluating the whole region over the run
state's block arrays, so k instructions cost one Python call.

Region rules
------------
Regions end at every instruction with mask-, memory- or event-ordering
side effects the mega-expression cannot subsume:

* **barrier** (``Bar``) — block-wide synchronization point;
* **shuffle** (``Shfl``) — cross-lane exchange;
* **atomic** (``AtomGlobal``/``AtomShared``) — read-modify-write with
  serialization counters;
* **memory** (``LdGlobal``/``StGlobal``/``LdShared``/``StShared``) —
  bounds checks, transaction/bank-replay counting, sanitizer hooks;
* **control** (``If``/``While``) — the active mask changes; their
  sub-traces are fused recursively.

Every trace slot lands in exactly one region: fused runs (k >= 2),
single ALU instructions kept as their original closure
(``single-alu``), and one boundary region per non-fusible instruction.
``FusedKernel.regions`` records this partition (nested sub-traces
included) and the property tests verify it is a partition with
boundaries only at the classes above.

Uniform-value scalarization
---------------------------
Reduction kernels are full of *lane-uniform* values: loop counters,
trip counts, immediates, kernel parameters. The interpreter computes
each of them across every lane of every block; a fused region instead
computes them as 0-d numpy arrays (same dtype, same overflow/rounding
behavior — elementwise numpy math is a pure function of value and
dtype, so one element stands for all) and stores them into the
register file as zero-stride ``np.broadcast_to`` views. Readers cannot
tell the difference: views have the full block shape and promoted
dtype, every engine path only reads register arrays (the masked
``_write`` merge copies before mutating), and downstream regions
detect the zero strides and keep computing at scalar cost. This is
what lets the hot loop of a tiled reduction run its bookkeeping
(``idx < len``, ``idx * stride``, ``idx + 1``) in microseconds
independent of block count.

Dead-store elimination
----------------------
Registers written inside a fused region and provably never read after
it (not live-out of the region, the kernel, or any enclosing loop) are
kept in generated-function locals and never stored to ``state.regs``.
The per-kernel count is aggregated into ``FusedKernel.stats`` and the
bench snapshot.

Loop megafusion
---------------
A ``While`` whose condition is lane-uniform and whose body is entirely
fusible compiles to **one** generated function containing the whole
Python ``while`` loop: registers live across iterations become SSA
locals, stores to ``state.regs`` are deferred until the loop exits
(split into condition-phase and body-phase flushes so a final
condition evaluation still observes the right values), and width-1
global loads whose index is an affine function of the loop counter are
resolved to one precomputed gather per iteration
(``_ld_affine_attempt``). This removes every per-iteration Python call
from the tiled-accumulation loop, the dominant cost of version (b).

Column-window execution
-----------------------
An ``If`` guarded by a lane-index comparison (``tid < 32`` and
friends) whose active columns form one contiguous warp-aligned run
executes its sub-trace on ``[:, c0:c1)`` register *views* with
full-active semantics — 8–32x smaller arrays on the second-stage warp
reduction — then merges written registers back once. Lane identity
(``tid``/``laneid``/``warpid``) is seeded from the original lane
numbers and warp statistics are sliced from the parent state, so event
counts stay bit-identical; requires no sanitizer attached and falls
back to masked broadcast execution otherwise.

Bit-exactness
-------------
The generated fast path (all lanes active) chains values between
instructions exactly as the engines' ``_write`` fast path would store
them: every value a later instruction can observe has the promoted
register dtype (int64/float64/bool) and is produced by the same numpy
entry points the interpreter uses (``_coerce_bool`` coercions,
``_int_div``, ``np.minimum``…). Under a partial mask the region takes
a generated slow path instead that funnels every instruction through
``state._write(dst, value, mask)`` — the masked merge changes result
dtypes (``np.result_type`` with the previous register value), so
in-region re-reads must observe the merged arrays; re-reading
``state.regs`` per instruction reproduces the interpreter exactly.

Boundary instructions keep their compiled closures (which delegate to
the run-state methods) except for specialized fast closures that stay
bit-exact while removing the dominant per-call numpy work; each
delegates back to the engine whenever its preconditions fail (sanitizer
attached, instruction mutated after fusion, unexpected operand shapes):

* ``While``/``If`` skip the per-iteration mask reductions while the
  active mask provably does not change (condition register is a
  lane-uniform view), falling back to the engine loop on divergence;
* ``Shfl`` with an immediate or lane-uniform offset precomputes the
  per-lane source map once per (block size, offset) instead of
  rebuilding the lane arithmetic every call;
* width-1 ``LdGlobal`` under a full mask in batched mode gathers
  directly and, when the per-lane indices are consecutive (the
  coalesced pattern), computes the 128-byte-segment transaction count
  analytically from the 32-lane warp starts instead of sorting;
* ``AtomGlobal`` with all active lanes hitting one address (the
  block-result pattern) updates the same-address tracking dict in one
  step instead of a per-block-row ``np.unique`` loop.

One deliberate divergence from the interpreter: a fused region counts
its ``inst.alu`` events after the whole region executes, so a region
aborted mid-way by a ``SimulationError`` (e.g. a read of an unwritten
register) leaves fewer events behind than per-instruction execution
would. Profiles of failed launches are never observed, so this is not
measurable from the public API.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field

import numpy as np

from ..vir.instructions import (
    AtomGlobal,
    AtomShared,
    Bar,
    BinOp,
    If,
    Imm,
    LdGlobal,
    LdParam,
    LdShared,
    Mov,
    Reg,
    Sel,
    Shfl,
    Special,
    StGlobal,
    StShared,
    UnOp,
    While,
)
from .compile import (
    _UNOP_IMPL,
    _div,
    _reader,
    compile_kernel,
)
from .engine import (
    _ATOMIC_TRACK_CAP,
    _ATOMIC_UFUNC,
    _SHFL_WIDTHS,
    WARP,
    SimulationError,
    _coerce_bool,
    _promote_dtype,
    memoize_by_identity,
)

#: Instruction classes a fused region may contain.
FUSIBLE_OPS = (BinOp, UnOp, Mov, Sel, Special, LdParam)

#: Region-boundary cause per non-fusible instruction class — the
#: "fallback causes" reported in fusion stats.
BOUNDARY_KINDS = {
    Bar: "barrier",
    Shfl: "shuffle",
    AtomGlobal: "atomic",
    AtomShared: "atomic",
    LdGlobal: "memory",
    StGlobal: "memory",
    LdShared: "memory",
    StShared: "memory",
    If: "control",
    While: "control",
}

#: Binary ops that return predicates and take operands uncoerced
#: (mirrors ``engine._CMP_LOGICAL``).
_CMP_LOGICAL = frozenset({"lt", "le", "gt", "ge", "eq", "ne", "land", "lor"})

#: op -> infix operator producing exactly the interpreter's numpy call.
_INFIX = {
    "add": "+", "sub": "-", "mul": "*", "mod": "%",
    "and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>",
    "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!=",
}

#: op -> helper-function symbol in the generated namespace.
_FUNC = {
    "div": "_div",
    "idiv": "_floor_div",
    "min": "_minimum",
    "max": "_maximum",
    "land": "_logical_and",
    "lor": "_logical_or",
}

# boolness lattice for eliding _coerce_bool on operands whose values
# are statically known (not) to be predicates.
_BOOL, _NONBOOL, _UNKNOWN = "bool", "nonbool", "unknown"


def _is_uniform(value):
    """True when ``value`` is a lane-uniform zero-stride broadcast view
    (every element aliases one memory word, so one element stands for
    the whole block)."""
    return (
        isinstance(value, np.ndarray)
        and value.ndim
        and not any(value.strides)
    )


def _vcore(value):
    """Smallest view covering every distinct element of ``value``:
    zero-stride (broadcast) axes collapse to length 1. A (block,
    thread)-shaped view that is uniform along threads reduces to its
    (block, 1) column — reductions and arithmetic on the core touch
    each distinct word once instead of once per alias."""
    if 0 in value.strides:
        return value[
            tuple(slice(None) if s else slice(0, 1) for s in value.strides)
        ]
    return value


# ---------------------------------------------------------------------
# generated-code runtime helpers
# ---------------------------------------------------------------------


def _rd(state, name, disp):
    """Register read with the engines' exact unwritten-register error."""
    try:
        return state.regs[name]
    except KeyError:
        raise SimulationError(
            f"kernel {state.kernel.name!r}: read of unwritten "
            f"register {disp}"
        ) from None


def _dn(value):
    """Downgrade a broadcast view to its cheapest equivalent form so
    in-region arithmetic touches each distinct element once: fully
    uniform views become 0-d scalars, views uniform along some axes
    (e.g. a per-block value broadcast across threads) keep only one
    slice per broadcast axis. numpy broadcasting restores the full
    logical shape whenever a core meets a full-width operand."""
    if isinstance(value, np.ndarray) and value.ndim and 0 in value.strides:
        if not any(value.strides):
            return np.array(value.flat[0])
        return _vcore(value)
    return value


#: dtype -> promotion target, or None when already canonical (avoids
#: a no-op ``astype`` call per store on the hot path).
_DT_CANON = {}


def _bx(state, value):
    """Store-normalize a chained value exactly like ``_write``'s
    full-mask path: full block shape, promoted register dtype. 0-d and
    reduced-core results become zero-stride views — free to create,
    free for the next region to downgrade again."""
    dt = value.dtype
    try:
        tgt = _DT_CANON[dt]
    except KeyError:
        pd = _promote_dtype(dt)
        tgt = _DT_CANON[dt] = None if pd == dt else pd
    if tgt is not None:
        value = value.astype(tgt, copy=False)
    if value.shape != state.shape:
        value = np.broadcast_to(value, state.shape)
    return value


def _af(state, name, stored, a, b):
    """Record affine provenance ``stored = base + offset`` for a just-
    stored register when one addend is a full-shape non-broadcast array
    and the other a lane-uniform integer. A loop-carried gather index
    (``idx = base + trip * stride``) re-derives the same base every
    iteration; the provenance lets :func:`_c_ld_global_fast` analyze
    the base once and replay bounds/transactions per offset. Consumers
    must check ``state.regs[name] is stored`` — any later write
    invalidates the record by breaking that identity."""
    off = None
    if isinstance(b, (int, np.integer)):
        off, base = int(b), a
    elif isinstance(b, np.ndarray) and b.ndim == 0 and b.dtype.kind in "iu":
        off, base = int(b), a
    elif isinstance(a, (int, np.integer)):
        off, base = int(a), b
    elif isinstance(a, np.ndarray) and a.ndim == 0 and a.dtype.kind in "iu":
        off, base = int(a), b
    if (
        off is not None
        and isinstance(base, np.ndarray)
        and base.shape == stored.shape
        and base.dtype == stored.dtype
    ):
        state._cache[("af", name)] = (stored, base, off)
    else:
        state._cache.pop(("af", name), None)


def _sp(state, kind):
    """Special-register read in reduced-core form.

    Values match ``state._special(kind)`` element for element (same
    int64 dtype), but carry only the distinct elements: ``ntid`` /
    ``nctaid`` are 0-d, ``ctaid`` in batched mode is the (blocks, 1)
    block-id column, ``tid``/``laneid``/``warpid`` in batched mode are
    one (1, threads) row. Derived values (trip counts, tile starts)
    then stay reduced through whole regions, which is what keeps a
    tiled loop's per-block bookkeeping at O(blocks) instead of
    O(blocks * threads). ``_bx`` restores full shape on store."""
    key = ("sp0", kind)
    value = state._cache.get(key)
    if value is None:
        shape = state.shape
        if kind == "ntid":
            value = np.array(state.nthreads, dtype=np.int64)
        elif kind == "nctaid":
            value = np.array(state.step.grid, dtype=np.int64)
        elif len(shape) == 2:
            lanes = np.arange(state.nthreads, dtype=np.int64)
            if kind == "ctaid":
                value = state.block_ids[:, None]
            elif kind == "tid":
                value = lanes[None, :]
            elif kind == "laneid":
                value = (lanes % WARP)[None, :]
            elif kind == "warpid":
                value = (lanes // WARP)[None, :]
            else:
                value = state._special(kind)  # same unknown-kind error
        elif kind == "ctaid":
            value = np.array(state.block_id, dtype=np.int64)
        else:
            value = state._special(kind)  # 1-D tid forms are minimal
        state._cache[key] = value
    return value


def _lp(state, name):
    """Kernel-parameter read as a 0-d array: ``np.full(shape, v)`` and
    ``np.array(v)`` have identical dtype and per-element value, so the
    uniform form is exact; ``_bx`` restores the full shape on store."""
    key = ("param0", name)
    value = state._cache.get(key)
    if value is None:
        value = np.array(state.step.args[name])
        state._cache[key] = value
    return value


def _wc(state, reg, value, mask):
    """Masked register merge with a column-structured fast path.

    Semantics of ``state._write`` under a partial mask, specialized:
    when the mask activates the same columns in every block row and
    both the incoming value and the current register contents are
    block-uniform, the engine's full copy + fancy-index merge
    (O(lanes)) collapses to one ``np.where`` over a single row,
    re-broadcast as a zero-stride view — which also keeps the register
    block-uniform, so downstream column fast paths (Ifs, shared
    memory, further merges) stay engaged through a divergent tail.
    The merge dtype is forced to ``result_type(current, value)``
    exactly as ``_write`` computes it. Anything not provably
    block-uniform defers to ``state._write`` unchanged."""
    row = _col_row(state, mask)
    if row is not None:
        v = np.asarray(value)
        vrow = _row_core(state, v)
        if vrow is not None:
            current = state.regs.get(reg.name)
            if current is None:
                out = vrow.astype(_promote_dtype(v.dtype), copy=False)
                state.regs[reg.name] = np.broadcast_to(out, state.shape)
                return
            crow = _row_core(state, current)
            if crow is not None:
                merged_dtype = np.result_type(current.dtype, v.dtype)
                merged = np.where(row, vrow, crow)
                if merged.dtype != merged_dtype:
                    merged = merged.astype(merged_dtype)
                state.regs[reg.name] = np.broadcast_to(merged, state.shape)
                return
    state._write(reg, value, mask)


#: Shared globals for every generated region function.
_BASE_NAMESPACE = {
    "np": np,
    "_rd": _rd,
    "_dn": _dn,
    "_bx": _bx,
    "_af": _af,
    "_sp": _sp,
    "_lp": _lp,
    "_wc": _wc,
    "_0d": np.asarray,
    "_cb": _coerce_bool,
    "_div": _div,
    "_floor_div": np.floor_divide,
    "_minimum": np.minimum,
    "_maximum": np.maximum,
    "_logical_and": np.logical_and,
    "_logical_or": np.logical_or,
    "_logical_not": np.logical_not,
    "_neg": _UNOP_IMPL["neg"],
    "_bnot": _UNOP_IMPL["bnot"],
    "_where": np.where,
}


# ---------------------------------------------------------------------
# region mega-expression codegen
# ---------------------------------------------------------------------


class _RegionCodegen:
    """Synthesize one Python function executing a fused ALU region."""

    def __init__(self, kernel_name, instrs, index, visible=None):
        self.kernel_name = kernel_name
        self.instrs = instrs
        self.index = index
        self.visible = visible  # reg names readable outside this region
        self.fast = []          # fast-path lines (all lanes active)
        self.slow = []          # slow-path lines (masked per-instr writes)
        self.ns = dict(_BASE_NAMESPACE)
        self.binding = {}       # reg -> (fast symbol, boolness)
        self.livein = {}        # reg -> fast local symbol
        self.affine = {}        # reg -> (addend sym, addend sym)
        self.dead_stores = 0
        self.counter = 0

    def _sym(self, prefix="_v"):
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _const(self, value):
        """Source literal for an Imm (namespace constant for non-finite
        floats, whose repr is not valid Python)."""
        if isinstance(value, float) and not math.isfinite(value):
            sym = self._sym("_K")
            self.ns[sym] = value
            return sym
        return repr(value)

    def _operand(self, operand):
        """Return ``(fast_expr, slow_expr, boolness, is_array)``."""
        if isinstance(operand, Imm):
            lit = self._const(operand.value)
            boolness = _BOOL if isinstance(operand.value, bool) else _NONBOOL
            return lit, lit, boolness, False
        name = operand.name
        bound = self.binding.get(name)
        if bound is not None:
            sym, boolness = bound
            return sym, f"_dn(_regs[{name!r}])", boolness, True
        # live-in: load (fast path) at first use, preserving the
        # interpreter's unwritten-register error order; downgrade
        # lane-uniform views to 0-d so chained math stays scalar.
        # The slow path downgrades too: expressions on reduced cores
        # yield core-shaped results the masked merge can keep as
        # block-uniform broadcast views (see ``_wc``).
        sym = self.livein.get(name)
        read = f"_rd(state, {name!r}, {str(operand)!r})"
        if sym is None:
            sym = self._sym("_li")
            self.livein[name] = sym
            self.fast.append(f"{sym} = _dn({read})")
        return sym, f"_dn({read})", _UNKNOWN, True

    def _coerced(self, operand):
        """Operand exprs under C arithmetic semantics (bools as 0/1);
        also returns the raw (uncoerced) fast symbol for provenance."""
        fast, slow, boolness, is_array = self._operand(operand)
        raw = fast
        if boolness != _NONBOOL:
            fast = f"_cb({fast})"
        slow = f"_cb({slow})"
        return fast, slow, is_array, raw

    def _emit(self, instr, fast_expr, slow_expr, boolness, is_array):
        dst = instr.dst
        self.affine.pop(dst.name, None)
        if not is_array:
            # All-Imm result: wrap to a 0-d array immediately so chained
            # arithmetic wraps/overflows at the register dtype (a python
            # int would carry arbitrary precision through the region).
            fast_expr = f"_0d({fast_expr})"
        sym = self._sym()
        self.fast.append(f"{sym} = {fast_expr}")
        rsym = f"_R{len(self.ns)}"
        self.ns[rsym] = dst
        self.slow.append(f"_wc(state, {rsym}, {slow_expr}, mask)")
        self.binding[dst.name] = (sym, boolness)

    def _gen_instr(self, instr):
        cls = type(instr)
        if cls is BinOp:
            if instr.op in _CMP_LOGICAL:
                fa, sa, _, aa = self._operand(instr.a)
                fb, sb, _, ab = self._operand(instr.b)
                boolness = _BOOL
            else:
                fa, sa, aa, ra = self._coerced(instr.a)
                fb, sb, ab, rb = self._coerced(instr.b)
                boolness = _NONBOOL
            op = _INFIX.get(instr.op)
            if op is not None:
                fast = f"({fa}) {op} ({fb})"
                slow = f"({sa}) {op} ({sb})"
            else:
                fn = _FUNC[instr.op]
                fast = f"{fn}({fa}, {fb})"
                slow = f"{fn}({sa}, {sb})"
            self._emit(instr, fast, slow, boolness, aa or ab)
            if instr.op == "add" and (aa or ab):
                self.affine[instr.dst.name] = (ra, rb)
        elif cls is UnOp:
            fa, sa, _, is_array = self._operand(instr.a)
            if instr.op == "lnot":
                fn, boolness = "_logical_not", _BOOL
            else:  # neg / bnot wrap np.asarray(_coerce_bool(.)) themselves
                fn = "_neg" if instr.op == "neg" else "_bnot"
                boolness = _NONBOOL
            self._emit(
                instr, f"{fn}({fa})", f"{fn}({sa})", boolness, is_array
            )
        elif cls is Mov:
            fa, sa, boolness, is_array = self._operand(instr.a)
            self._emit(instr, fa, sa, boolness, is_array)
        elif cls is Sel:
            fc, sc, _, _ = self._operand(instr.cond)
            fa, sa, ba, aa = self._operand(instr.a)
            fb, sb, bb, ab = self._operand(instr.b)
            boolness = ba if ba == bb else _UNKNOWN
            self._emit(
                instr,
                f"_where({fc}, {fa}, {fb})",
                f"_where({sc}, {sa}, {sb})",
                boolness,
                aa or ab,
            )
        elif cls is Special:
            fast = f"_sp(state, {instr.kind!r})"
            slow = f"_bx(state, {fast})"  # _write expects full shape
            self._emit(instr, fast, slow, _NONBOOL, True)
        elif cls is LdParam:
            fast = f"_lp(state, {instr.name!r})"
            slow = f"_bx(state, {fast})"
            self._emit(instr, fast, slow, _UNKNOWN, True)
        else:  # pragma: no cover - region former only feeds FUSIBLE_OPS
            raise SimulationError(f"cannot fuse {cls.__name__}")

    def build(self):
        for instr in self.instrs:
            self._gen_instr(instr)
        stores = []
        for name, (sym, _) in self.binding.items():
            # Dead-store elimination: a register no instruction outside
            # this region can observe (not a live-in of any region, not
            # an operand of any boundary/control instruction) need not
            # reach the register file on the fast path. The slow path
            # still writes it — interpreter-exact under masks — and any
            # visible read keeps the store, so the skip is unobservable.
            if self.visible is not None and name not in self.visible:
                self.dead_stores += 1
                continue
            aff = self.affine.get(name)
            if aff is None:
                stores.append(f"_regs[{name!r}] = _bx(state, {sym})")
            else:
                ssym = self._sym("_s")
                stores.append(
                    f"{ssym} = _regs[{name!r}] = _bx(state, {sym})"
                )
                stores.append(
                    f"_af(state, {name!r}, {ssym}, {aff[0]}, {aff[1]})"
                )
        body = ["_regs = state.regs", "if state._cur_all:"]
        body += [f"    {line}" for line in self.fast + stores]
        body += ["else:"]
        body += [f"    {line}" for line in self.slow]
        body.append(
            f"state.events['inst.alu'] += "
            f"{len(self.instrs)} * state._cur_warps"
        )
        src = "def _region(state, mask):\n" + "".join(
            f"    {line}\n" for line in body
        )
        code = compile(
            src, f"<fused:{self.kernel_name}:{self.index}>", "exec"
        )
        exec(code, self.ns)
        fn = self.ns["_region"]
        fn._instrs = list(self.instrs)
        fn._source = src
        return fn


# ---------------------------------------------------------------------
# specialized control-flow closures
# ---------------------------------------------------------------------


def _col_row(state, mask):
    """One row of a column-structured mask, or None.

    A mask is column-structured when every block row activates the same
    columns — trivially true under a full mask, and detectable for free
    (zero block stride) on the broadcast views the column If/While
    paths pass down. Lane-indexed conditions (``tid``/``laneid``/
    ``warpid`` comparisons) always produce such masks, so the whole
    divergent tail of a reduction runs on one (threads,)-row."""
    if len(state.shape) != 2:
        return None
    if state._cur_all:
        row = state._cache.get(("fullrow",))
        if row is None:
            row = np.ones(state.nthreads, dtype=bool)
            state._cache[("fullrow",)] = row
        return row
    if mask.ndim == 2 and mask.strides[0] == 0:
        return mask[0]
    return None


def _row_core(state, value):
    """Per-column row of a value uniform along the block axis (0-d, or
    a zero-block-stride broadcast view); None otherwise."""
    value = np.asarray(value)
    if value.ndim == 0:
        return np.broadcast_to(value, (state.nthreads,))
    core = _vcore(value)
    if (
        core.ndim == 2
        and core.shape[0] == 1
        and core.shape[1] == state.nthreads
    ):
        return core[0]
    return None


#: Replay totals keyed by the (tiny) active-lane/address pattern; the
#: same shared-op closures replay identical patterns every launch, so
#: the unique/bincount pipeline runs once per pattern, not per call.
_ROW_REPLAY_MEMO = {}


def _row_replays(state, cols, addrs):
    """Bank replays of one block row, scaled by the block count.

    Every block row has the same active columns and addresses, and the
    engine's replay groups (block, warp) never span blocks — so the
    per-block totals are identical and the ``np.unique`` over all
    active lanes collapses to one over a single row's actives."""
    key = (state.nthreads, cols.tobytes(), addrs.tobytes())
    total = _ROW_REPLAY_MEMO.get(key)
    if total is None:
        gidr = state._warp_of_lane[cols]
        span = int(addrs.max()) + 1
        unique_keys = np.unique(gidr * span + addrs)
        ugroup = unique_keys // span
        ubank = (unique_keys % span) % 32
        ngroups = int(ugroup[-1]) + 1
        counts = np.bincount(
            ugroup * 32 + ubank, minlength=ngroups * 32
        ).reshape(ngroups, 32)
        present = counts.any(axis=1)
        total = int(counts.max(axis=1)[present].sum()) - int(present.sum())
        if len(_ROW_REPLAY_MEMO) < 4096:
            _ROW_REPLAY_MEMO[key] = total
    if total:
        state.events["mem.shared.replays"] += total * state.nblocks


def _fuse_loop(kernel_name, index, instr, cond_trace, body_trace):
    """Megafuse an eligible While into one generated Python loop.

    Eligibility: the fused condition trace is regions only, the fused
    body is regions and specialized width-1 global loads — i.e. the
    loop body provably cannot change the mask or touch shared memory.
    The generated function then keeps every register in SSA locals
    across iterations and defers all register-file traffic to loop
    exit, which removes the per-iteration store-normalize / provenance
    / live-in-reload ABI the region closures pay at their boundaries:

    * live-ins that are read before any in-loop write load **once**
      before the loop; registers rebound in-loop carry their latest
      SSA value back to the live-in symbol at the end of each body;
    * a gather index produced by an affine add and consumed only by
      one load is never materialized — the load resolves ``base +
      offset`` directly (:func:`_ld_affine_attempt`), and only on a
      miss does the generated code compute the index, flush it, and
      call the original load closure;
    * the exit flush writes condition-phase registers always (the
      condition runs once more than the body) and body-phase registers
      only when at least one iteration ran, matching the interpreter's
      final register file exactly.

    The function returns ``None`` on a clean (uniform-false) exit and
    ``(cond, iterations)`` on the first mixed condition, where the
    caller resumes the engine-exact divergent continuation. Event
    counts (``inst.alu`` per phase evaluation, load counters inside
    the load paths) replicate the region closures' totals.
    """
    cond_instrs = []
    for closure in cond_trace:
        instrs = getattr(closure, "_instrs", None)
        if instrs is None:
            return None
        cond_instrs.extend(instrs)
    if not cond_instrs or not isinstance(instr.cond, Reg):
        return None
    segments = []  # ("alu", instr, None) | ("ld", instr, closure)
    for closure in body_trace:
        instrs = getattr(closure, "_instrs", None)
        if instrs is not None:
            segments.extend(("alu", i, None) for i in instrs)
        elif (
            getattr(closure, "_specialized", None) == "ld_global"
            and closure._instr.width == 1
            and isinstance(closure._instr.idx, Reg)
        ):
            segments.append(("ld", closure._instr, closure))
        else:
            return None

    # Read/write stream over one iteration: condition instructions,
    # the While condition read, then the body. Drives the read-count
    # (for lazy index elision), the set of written names (carries,
    # flush phases) and the pre-loop live-in loads (any name read
    # before its first in-loop write — later reads then never touch
    # the stale register file mid-loop).
    body_instrs = [seg[1] for seg in segments]
    stream = []
    for i in cond_instrs:
        stream.extend(("r", op) for op in _reg_operand_objs(i))
        stream.append(("w", i.dst))
    stream.append(("r", instr.cond))
    for i in body_instrs:
        stream.extend(("r", op) for op in _reg_operand_objs(i))
        stream.append(("w", i.dst))
    reads = {}
    written_names = set()
    preload = []
    seen_preload = set()
    for ev, op in stream:
        if ev == "w":
            written_names.add(op.name)
        else:
            reads[op.name] = reads.get(op.name, 0) + 1
            if op.name not in written_names and op.name not in seen_preload:
                preload.append(op)
                seen_preload.add(op.name)

    # An index register is lazily elidable when its only read anywhere
    # in the loop is one load's idx and its producer is the last body
    # write before that load.
    lazy_lds = set()
    last_def = {}
    for kind, bi, _ in segments:
        if kind == "ld":
            producer = last_def.get(bi.idx.name)
            if producer is not None and reads.get(bi.idx.name, 0) == 1:
                lazy_lds.add(id(bi))
        last_def[bi.dst.name] = bi

    g = _RegionCodegen(kernel_name, [], f"{index}-loop", visible=None)
    ns = g.ns
    ns["_vcore"] = _vcore
    ns["SimulationError"] = SimulationError
    for op in preload:
        g._operand(op)  # emits the live-in load at position 0..n
    preload_end = len(g.fast)
    for i in cond_instrs:
        g._gen_instr(i)
    csym, _, _, _ = g._operand(instr.cond)
    cond_end = len(g.fast)
    cond_syms = _lhs_syms(g.fast[preload_end:cond_end])
    livein_names = {sym: name for name, sym in g.livein.items()}
    cond_binding = dict(g.binding)

    def _stable(sym):
        # May the symbol be re-read at loop exit / inside a later
        # fallback with the value the producer saw? Condition-phase
        # symbols are reassigned by the final (exit) evaluation and
        # carried live-ins by the body-end carry, so neither is
        # stable; body SSA symbols, un-carried live-ins and literals
        # never change after the producing body ran.
        if sym in cond_syms:
            return False
        name = livein_names.get(sym)
        return name is None or name not in written_names

    lazy_flush = {}  # idx reg name -> deferred assignment line
    n_ld = 0
    for kind, bi, closure in segments:
        if kind == "alu":
            g._gen_instr(bi)
            continue
        idxname = bi.idx.name
        dstname = bi.dst.name
        aff = g.affine.get(idxname)
        deferred = None
        if (
            id(bi) in lazy_lds
            and aff is not None
            and _stable(aff[0])
            and _stable(aff[1])
        ):
            deferred = g.fast.pop()
            lazy_flush[idxname] = deferred
        fsym = f"_ldc{n_ld}"
        ns[fsym] = closure
        tsym = g._sym("_t")
        if aff is not None:
            asym = f"_lda{n_ld}"
            ns[asym] = _make_ld_attempt(bi.buf)
            g.fast.append(
                f"{tsym} = {asym}(state, mask, {aff[0]}, {aff[1]})"
            )
            g.fast.append(f"if {tsym} is None:")
            fallback = []
            if deferred is not None:
                fallback.append(deferred)
            isym = g.binding[idxname][0]
            fallback.append(f"_regs[{idxname!r}] = _bx(state, {isym})")
            fallback.append(f"{fsym}(state, mask)")
            fallback.append(f"{tsym} = _regs[{dstname!r}]")
            g.fast.extend("    " + line for line in fallback)
        else:
            bound = g.binding.get(idxname)
            if bound is not None:
                g.fast.append(
                    f"_regs[{idxname!r}] = _bx(state, {bound[0]})"
                )
            g.fast.append(f"{fsym}(state, mask)")
            g.fast.append(f"{tsym} = _regs[{dstname!r}]")
        g.affine.pop(dstname, None)
        g.binding[dstname] = (tsym, _UNKNOWN)
        n_ld += 1
    body_end = len(g.fast)

    # Exit flush: condition-phase registers hold the final (exit)
    # evaluation's values; registers last written in the body hold the
    # last completed iteration's — which only exists once a body ran.
    flush_always = []
    flush_body = []
    for name, (sym, _) in g.binding.items():
        cond_bound = cond_binding.get(name)
        if cond_bound is not None:
            # The condition phase runs once more than the body, so its
            # write is the final value even for registers the body
            # also rebinds.
            flush_always.append(
                f"_regs[{name!r}] = _bx(state, {cond_bound[0]})"
            )
        else:
            line = lazy_flush.get(name)
            if line is not None:
                flush_body.append(line)
            flush_body.append(f"_regs[{name!r}] = _bx(state, {sym})")
    carries = []
    for name, lisym in g.livein.items():
        bound = g.binding.get(name)
        if bound is not None:
            carries.append(f"{lisym} = {bound[0]}")

    lines = ["_regs = state.regs", "ev = state.events",
             "_W = state._cur_warps", "_cap = state.executor.loop_cap",
             "_it = 0"]
    lines.append("def _fl():")
    for line in flush_always:
        lines.append("    " + line)
    lines.append("    if _it:")
    for line in flush_body or ["pass"]:
        lines.append("        " + line)
    lines.extend(g.fast[:preload_end])
    lines.append("while True:")
    for line in g.fast[preload_end:cond_end]:
        lines.append("    " + line)
    lines.append(f"    ev['inst.alu'] += {len(cond_instrs)} * _W")
    lines.append(f"    _c = {csym}")
    lines.append("    if isinstance(_c, np.ndarray) and _c.ndim:")
    lines.append("        _u = _vcore(_c)")
    lines.append("        if not _u.all():")
    lines.append("            _fl()")
    lines.append("            if _u.any():")
    lines.append("                return (_c, _it)")
    lines.append("            return None")
    lines.append("    elif not _c:")
    lines.append("        _fl()")
    lines.append("        return None")
    lines.append("    _it += 1")
    lines.append("    if _it > _cap:")
    lines.append("        _fl()")
    lines.append("        raise SimulationError(")
    lines.append("            f\"kernel {state.kernel.name!r}: loop "
                 "exceeded \"")
    lines.append("            f\"iteration cap ({_cap})\"")
    lines.append("        )")
    for line in g.fast[cond_end:body_end]:
        lines.append("    " + line)
    n_body_alu = sum(1 for k, _, _ in segments if k == "alu")
    if n_body_alu:
        lines.append(f"    ev['inst.alu'] += {n_body_alu} * _W")
    for line in carries:
        lines.append("    " + line)
    src = "def _loop(state, mask):\n" + "".join(
        f"    {line}\n" for line in lines
    )
    code = compile(src, f"<fused:{kernel_name}:{index}-loop>", "exec")
    exec(code, ns)
    fn = ns["_loop"]
    fn._source = src
    return fn


def _lhs_syms(lines):
    """Symbols assigned by generated fast-path lines."""
    out = set()
    for line in lines:
        stripped = line.strip()
        eq = stripped.find(" = ")
        if eq > 0:
            lhs = stripped[:eq]
            if lhs.startswith("_") and lhs.isidentifier():
                out.add(lhs)
    return out


def _reg_operand_objs(instr):
    for field_name in _OPERAND_FIELDS:
        operand = getattr(instr, field_name, None)
        if isinstance(operand, Reg):
            yield operand


def _while_divergent_continue(
    state, mask, cond, iterations, cond_trace, body_trace, cond_read
):
    """Divergent continuation of a fast While — the engine's
    ``_exec_while_c`` body with the iteration count carried over;
    ``cond`` is already evaluated.  While the condition stays
    block-uniform (same columns active in every block row, e.g. a
    ``tid < k`` guard), the active mask is kept as a broadcast view of
    one row: the divergence reduceats accept views, and downstream
    closures (shared ops, Ifs) see the zero block stride and take
    their column paths.  Shared with the native backend's lowered
    loops, which return here on the first mixed condition."""
    cap = state.executor.loop_cap
    row_active = None
    if len(state.shape) == 2:
        row_active = np.ones(state.nthreads, dtype=bool)
    active = mask
    while True:
        cond = np.asarray(cond, dtype=bool)
        rowc = None if row_active is None else _row_core(state, cond)
        if rowc is not None:
            row_active = row_active & rowc
            staying = np.broadcast_to(row_active, state.shape)
        else:
            row_active = None
            if cond.shape != state.shape:
                cond = np.broadcast_to(cond, state.shape)
            staying = active & cond
        state._count_loop_divergence(active, staying)
        active = staying
        if not active.any():
            return
        iterations += 1
        if iterations > cap:
            raise SimulationError(
                f"kernel {state.kernel.name!r}: loop exceeded "
                f"iteration cap ({cap})"
            )
        state._run_trace(body_trace, active)
        state._run_trace(cond_trace, active)
        cond = cond_read(state)


def _c_while_fast(instr, cond_trace, body_trace, kernel_name=None, index=0):
    """While loop with the per-iteration mask machinery elided as long
    as the mask provably cannot change.

    Entered only under a full mask (``state._cur_all``); then the
    engine's per-iteration ``_run_trace`` save/recompute of the warp
    counters is an identity, so the loop runs the sub-trace closures
    directly. While the condition is uniformly true no lane exits
    (``_count_loop_divergence`` would early-return without an event);
    uniformly false means every lane exits together (no lane stays, so
    divergence is skipped there too). Uniformity is decided on the
    condition's reduced core (``_vcore``), so a per-block trip count
    broadcast across threads costs an O(blocks) reduction per
    iteration, and even a fully materialized all-true condition skips
    the engine's mask bookkeeping for one ``.all()``. The first mixed
    condition falls back to the engine's exact loop — same ``staying``
    masks, same divergence events, same iteration-cap error — with the
    iteration counter carried over.
    """
    cond_read = _reader(instr.cond)
    genloop = None
    if kernel_name is not None:
        genloop = _fuse_loop(kernel_name, index, instr, cond_trace, body_trace)

    def run(state, mask):
        if not state._cur_all:
            state._exec_while_c(cond_trace, cond_read, body_trace, mask)
            return
        cap = state.executor.loop_cap
        if (
            genloop is not None
            and state.san is None
            and len(state.shape) == 2
        ):
            res = genloop(state, mask)
            if res is None:
                return
            cond, iterations = res
        else:
            iterations = 0
            while True:
                for fn in cond_trace:
                    fn(state, mask)
                cond = cond_read(state)
                if isinstance(cond, np.ndarray) and cond.ndim:
                    core = _vcore(cond)
                    if not core.all():
                        if not core.any():
                            return  # every lane exits together
                        break  # mixed condition: engine loop from here
                elif not cond:
                    return  # scalar condition, uniformly false
                iterations += 1
                if iterations > cap:
                    raise SimulationError(
                        f"kernel {state.kernel.name!r}: loop exceeded "
                        f"iteration cap ({cap})"
                    )
                for fn in body_trace:
                    fn(state, mask)
        from ..obs.fragments import note_fallback

        note_fallback(state, "fused.loop", "divergent-continue")
        _while_divergent_continue(
            state, mask, cond, iterations, cond_trace, body_trace,
            cond_read,
        )

    run._cond_trace = cond_trace
    run._body_trace = body_trace
    run._instr = instr
    run._loop_fused = genloop is not None
    return run


def _window_bounds(row):
    """``(c0, c1)`` of a contiguous warp-aligned run of active columns,
    or None. The run must start on a warp boundary and end on one (or at
    the row's end, covering a ragged last warp) so per-warp statistics
    — event counts, transaction groups, shuffle segments — computed
    inside the window line up with the engine's full-row groups."""
    idx = np.flatnonzero(row)
    if idx.size == 0:
        return None
    c0, c1 = int(idx[0]), int(idx[-1]) + 1
    if c1 - c0 != idx.size:
        return None  # holes: not a contiguous run
    if c0 % WARP or (c1 % WARP and c1 != row.size):
        return None
    return c0, c1


def _run_windowed(state, trace, c0, c1):
    """Execute ``trace`` on the column window ``[c0, c1)`` of ``state``
    at full-active speed, then merge written registers back.

    A branch guarded by a lane-index comparison (``tid < 32``, the
    divergent tail of every reduction) activates the same few warp-
    aligned columns in every block row. The engine runs such a branch
    over the whole ``(blocks, threads)`` arrays with a partial mask —
    one defensive copy plus a fancy-index merge per register write, on
    8-32x more lanes than are active. This instead builds a shallow
    *window substate* whose registers are ``[:, c0:c1]`` views, whose
    lane bookkeeping (``tid``/``laneid``/``warpid`` caches, warp starts,
    per-warp group ids) carries the original lane identities, and runs
    the sub-trace under a full mask — every closure takes its all-active
    fast path on arrays ``width/(c1-c0)`` times smaller.

    Exactness: window columns cover whole warps, so per-warp event
    counts, transaction segments, bank-replay groups and shuffle
    sources (width <= 32 never crosses a covered warp) are the engine's
    bit for bit; bounds errors see exactly the active lanes' indices;
    shared memory, global memory, events and atomic tracking are the
    parent's own objects. Registers merge back like one masked write
    per *final* value (the engine merges per instruction, but only the
    last merge is observable). A register created inside the window
    holds zeros outside it where the engine's vectorized execution
    leaves whatever the full-width computation produced — both are
    "undefined on HW" values no valid kernel reads back; the masked
    width-1 load (the one common creator) zero-fills inactive lanes in
    the engine too.
    """
    nblocks, nthreads = state.shape
    for arr in state.regs.values():
        if not isinstance(arr, np.ndarray) or arr.shape != state.shape:
            return False  # unexpected register layout: let the caller mask
    w = c1 - c0
    sub = copy.copy(state)
    sub.nthreads = w
    sub.shape = (nblocks, w)
    sub.nwarps = (w + WARP - 1) // WARP
    sub._warp_of_lane = state._warp_of_lane[c0:c1]
    sub._warp_starts = np.arange(0, w, WARP)
    sub._brow = state._brow[:, c0:c1]
    sub._gid = state._gid[:, c0:c1]
    sub._cur_warps = None
    sub._cur_all = None
    lanes = np.arange(c0, c1, dtype=np.int64)
    sub._cache = {
        ("sp0", "tid"): lanes[None, :],
        ("sp0", "laneid"): (lanes % WARP)[None, :],
        ("sp0", "warpid"): (lanes // WARP)[None, :],
        ("sp0", "ntid"): np.array(nthreads, dtype=np.int64),
        ("sp0", "nctaid"): np.array(state.step.grid, dtype=np.int64),
        ("sp0", "ctaid"): state.block_ids[:, None],
    }
    views = {name: arr[:, c0:c1] for name, arr in state.regs.items()}
    sub.regs = dict(views)
    sub._run_trace(trace, np.ones(sub.shape, dtype=bool))
    for name, value in sub.regs.items():
        if views.get(name) is value:
            continue
        base = state.regs.get(name)
        if base is None:
            out = np.zeros(state.shape, dtype=value.dtype)
        else:
            out = np.array(base, dtype=np.result_type(base.dtype, value.dtype))
        out[:, c0:c1] = value
        state.regs[name] = out
    return True


def _c_if_fast(instr, then_trace, else_trace):
    """If with a shortcut for value-uniform conditions: the whole block
    takes one side, no warp can diverge (the engine's reduceat over the
    empty side is identically zero), and the taken side runs under the
    unchanged current mask. Uniformity is decided over *all* lanes on
    the condition's reduced core (``_vcore``), which makes the
    shortcut mask-independent: when every lane agrees, ``mask & cond``
    is ``mask`` itself or empty, whatever the mask. Genuinely mixed
    conditions use the engine path.
    """
    cond_read = _reader(instr.cond)
    has_else = bool(instr.otherwise)

    def run(state, mask):
        cond = cond_read(state)
        if isinstance(cond, np.ndarray) and cond.ndim:
            core = _vcore(cond)
            if core.all():
                taken = True
            elif not core.any():
                taken = False
            else:
                # Mixed but block-uniform condition under a column-
                # structured mask: split one row instead of the whole
                # block, count warp divergence on that row and scale by
                # the block count (every row splits identically), and
                # hand the sides broadcast-view masks so nested
                # closures keep their column fast paths.
                row = _col_row(state, mask)
                rowc = None if row is None else _row_core(state, cond)
                if rowc is None:
                    state._exec_if_c(
                        cond_read, then_trace, else_trace, has_else, mask
                    )
                    return
                rowc = np.asarray(rowc, dtype=bool)
                then_row = row & rowc
                else_row = row & ~rowc
                starts = state._warp_starts
                divergent = int(np.count_nonzero(
                    np.bitwise_or.reduceat(then_row, starts)
                    & np.bitwise_or.reduceat(else_row, starts)
                )) * state.nblocks
                if divergent:
                    state.events["branch.divergent"] += divergent
                for side_trace, side_row in (
                    (then_trace, then_row),
                    (else_trace, else_row) if has_else else (None, None),
                ):
                    if side_trace is None or not side_row.any():
                        continue
                    win = (
                        _window_bounds(side_row)
                        if state.san is None
                        else None
                    )
                    if not (
                        win is not None
                        and win[1] - win[0] < state.nthreads
                        and _run_windowed(state, side_trace, *win)
                    ):
                        state._run_trace(
                            side_trace,
                            np.broadcast_to(side_row, state.shape),
                        )
                return
        else:
            taken = bool(cond)
        if taken:
            for fn in then_trace:
                fn(state, mask)
        elif has_else:
            for fn in else_trace:
                fn(state, mask)

    run._then_trace = then_trace
    run._else_trace = else_trace
    run._instr = instr
    return run


# ---------------------------------------------------------------------
# specialized boundary closures
# ---------------------------------------------------------------------


def _shfl_source_lanes(mode, width, offset, nthreads):
    """Per-lane source map for a uniform-offset shuffle — the exact
    math of ``_shfl`` with the offset broadcast folded out. Returns
    None for modes the engine would reject (the caller then delegates
    so the error comes from one place)."""
    lanes = np.arange(nthreads, dtype=np.int64)
    sub = lanes % width
    base = lanes - sub
    off = np.asarray(offset)
    if mode == "down":
        target = sub + off
    elif mode == "up":
        target = sub - off
    elif mode == "xor":
        target = np.bitwise_xor(sub, off.astype(np.int64))
    elif mode == "idx":
        target = np.broadcast_to(off.astype(np.int64), lanes.shape)
    else:
        return None
    source = base + target
    valid = (target >= 0) & (target < width) & (source < nthreads)
    return np.where(valid, source, lanes).astype(np.int64)


def _c_shfl_fast(instr):
    """Shuffle with the source-lane map precomputed per (block size,
    offset value).

    Handles immediate offsets and value-uniform register offsets (the
    halving strides of a shuffle-tree loop). Uniformity is checked on
    the offset's reduced core; for a materialized offset under a full
    mask one value-equality scan replaces the engine's per-lane map
    rebuild. Under a partial mask only the *active* lanes' offsets
    reach the result (the masked ``_write`` merge discards the rest),
    so active-lane uniformity suffices — but only when the destination
    register already exists full-shape; a fresh destination stores the
    full per-lane result, inactive lanes included, and must take the
    engine path. Delegates to ``state._shfl`` — same results, same
    errors, same sanitizer hooks — whenever the fast preconditions
    fail: sanitizer attached, mixed offsets, unwritten or
    non-canonical source register, or the instruction mutated after
    fusion (the engine re-validates mode/width at execution time).
    """
    mode0, width0, off_op = instr.mode, instr.width, instr.offset
    off_imm = None
    if (
        isinstance(off_op, Imm)
        and isinstance(off_op.value, (int, np.integer))
        and not isinstance(off_op.value, bool)
    ):
        off_imm = int(off_op.value)
    off_name = off_op.name if isinstance(off_op, Reg) else None
    src_name = instr.src.name
    dst = instr.dst
    cache = {}

    def run(state, mask):
        if (
            state.san is not None
            or instr.mode is not mode0
            or instr.width != width0
            or instr.offset is not off_op
            or width0 not in _SHFL_WIDTHS
        ):
            state._shfl(instr, mask)
            return
        offset = off_imm
        if offset is None:
            off = state.regs.get(off_name) if off_name is not None else None
            if (
                isinstance(off, np.ndarray)
                and off.ndim
                and off.dtype.kind in "biu"
            ):
                if _is_uniform(off):
                    offset = int(off.flat[0])
                elif off.shape == state.shape:
                    if state._cur_all:
                        core = _vcore(off)
                        if bool((core == core.flat[0]).all()):
                            offset = int(core.flat[0])
                    elif isinstance(
                        state.regs.get(dst.name), np.ndarray
                    ) and state.regs[dst.name].shape == state.shape:
                        act = off[mask]
                        if act.size and bool((act == act[0]).all()):
                            offset = int(act[0])
            if offset is None:
                state._shfl(instr, mask)
                return
        src = state.regs.get(src_name)
        if not isinstance(src, np.ndarray) or src.shape != state.shape:
            state._shfl(instr, mask)
            return
        key = (state.nthreads, offset)
        source_lane = cache.get(key)
        if source_lane is None:
            source_lane = _shfl_source_lanes(
                mode0, width0, offset, state.nthreads
            )
            if source_lane is None:
                state._shfl(instr, mask)
                return
            cache[key] = source_lane
        if src.ndim == 2:
            result = src[:, source_lane]
        else:
            result = src[source_lane]
        state._write(dst, result, mask)
        state.events["inst.shfl"] += state._cur_warps

    run._specialized = "shfl"
    run._instr = instr
    return run


def _c_st_shared_fast(instr):
    """Shared store specialized for column-structured masks.

    Replicates ``_st_shared`` bit-for-bit when every block row
    activates the same columns and the address is block-uniform (a
    zero-block-stride view or scalar): bounds are checked on the
    per-row active addresses (same min/max, same error), races are
    impossible when those addresses are distinct within a block (the
    engine's race keys never span blocks), the scatter collapses to
    one column assignment, and bank replays come from one row scaled
    by the block count. Sanitizer runs, duplicate addresses (race /
    store-order semantics), and non-uniform shapes delegate."""
    idx_read = _reader(instr.idx)
    src_read = _reader(instr.src)
    buf = instr.buf

    def run(state, mask):
        row = None if state.san is not None else _col_row(state, mask)
        rowi = None if row is None else _row_core(state, idx_read(state))
        if rowi is None or rowi.dtype.kind not in "iu":
            state._st_shared(instr, mask)
            return
        cols = np.flatnonzero(row)
        addrs = rowi[cols]
        arr = state.shared[buf]
        lo = addrs.min()
        hi = addrs.max()
        if lo < 0 or hi >= arr.shape[1]:
            raise SimulationError(
                f"kernel {state.kernel.name!r}: out-of-bounds access to "
                f"shared buffer {buf!r} (size {arr.shape[1]}, index "
                f"range [{lo}, {hi}])"
            )
        if np.unique(addrs).size != addrs.size:
            state._st_shared(instr, mask)  # duplicate addrs: engine
            return                         # race check / store order
        src = np.asarray(src_read(state))
        if src.ndim == 0:
            arr[:, addrs] = np.float64(src)
        elif src.shape == state.shape:
            arr[:, addrs] = src[:, cols]
        else:
            state._st_shared(instr, mask)
            return
        state._count("inst.st.shared", mask)
        _row_replays(state, cols, addrs)

    run._instr = instr
    return run


def _c_ld_shared_fast(instr):
    """Shared load specialized for column-structured masks; same
    preconditions as :func:`_c_st_shared_fast` minus the duplicate-
    address delegation (gathers from one address are well-defined).
    The zero-fill + masked gather of the engine becomes a zero array
    plus one column assignment; the merge into the destination goes
    through ``state._write`` with the same mask, so inactive lanes
    keep their engine-exact values."""
    idx_read = _reader(instr.idx)
    buf = instr.buf

    def run(state, mask):
        row = None if state.san is not None else _col_row(state, mask)
        rowi = None if row is None else _row_core(state, idx_read(state))
        if rowi is None or rowi.dtype.kind not in "iu":
            state._ld_shared(instr, mask)
            return
        cols = np.flatnonzero(row)
        addrs = rowi[cols]
        arr = state.shared[buf]
        lo = addrs.min()
        hi = addrs.max()
        if lo < 0 or hi >= arr.shape[1]:
            raise SimulationError(
                f"kernel {state.kernel.name!r}: out-of-bounds access to "
                f"shared buffer {buf!r} (size {arr.shape[1]}, index "
                f"range [{lo}, {hi}])"
            )
        value = np.zeros(state.shape, dtype=np.float64)
        value[:, cols] = arr[:, addrs]
        state._write(instr.dst, value, mask)
        state._count("inst.ld.shared", mask)
        _row_replays(state, cols, addrs)

    run._instr = instr
    return run


def _ld_analyze_base(base, per_segment, cache):
    """Memoized analysis of an affine load base (the loop-invariant
    array under a ``base + offset`` index). ``cache`` is an id-keyed
    single-entry dict owned by the load site. Returns ``(base,
    per_segment, False)`` when the rows are not consecutive, else
    ``(base, per_segment, True, start0, lo0, hi0, warp_starts, shift,
    trans0, stride_or_0)`` — everything the per-offset replay needs."""
    info = cache.get(id(base))
    if info is not None and info[0] is base and info[1] == per_segment:
        return info
    consec = (
        base.shape[1] % 32 == 0
        and per_segment & (per_segment - 1) == 0
        and 0 not in base.strides
        and bool((base[:, 1:] == base[:, :-1] + 1).all())
    )
    if not consec:
        info = (base, per_segment, False)
    else:
        shift = per_segment.bit_length() - 1
        warp_starts = base[:, ::32].ravel()
        trans0 = int(
            ((warp_starts + 31 >> shift) - (warp_starts >> shift)).sum()
        ) + warp_starts.size
        starts = base[:, 0]
        nblocks = base.shape[0]
        stride = int(starts[1] - starts[0]) if nblocks > 1 else 0
        uniform = nblocks > 1 and stride > 0 and bool(
            (starts[1:] - starts[:-1] == stride).all()
        )
        info = (
            base, per_segment, True,
            int(starts[0]), int(base[:, 0].min()),
            int(base[:, -1].max()), warp_starts, shift, trans0,
            stride if uniform else 0,
        )
    cache.clear()
    cache[id(base)] = info
    return info


def _ld_affine_attempt(state, mask, buf, a, b, cache):
    """Gather ``buf[a + b]`` for a loop-fused load without ever
    materializing the index: one addend must be the loop-invariant 2-D
    int64 base, the other a lane-uniform non-negative signed integer.
    Returns the gathered float64 block (events recorded) or ``None``
    when the generated loop must fall back to the generic load closure
    (which first materializes the index into the register file).
    Raises the engine's exact out-of-bounds error when the shifted row
    ends fall outside the buffer — bounds come from the base's ends
    plus the offset, exactly as the elementwise index would."""
    base = off = None
    for x, y in ((a, b), (b, a)):
        if isinstance(y, np.ndarray):
            if y.ndim != 0 or y.dtype.kind != "i":
                continue
            y = int(y)
        elif isinstance(y, (int, np.signedinteger)) and not isinstance(
            y, bool
        ):
            y = int(y)  # 0-d int math yields numpy scalars
        else:
            continue
        if (
            isinstance(x, np.ndarray)
            and x.ndim == 2
            and x.shape == state.shape
            and x.dtype == np.int64
            and 0 not in x.strides
        ):
            base, off = x, y
            break
    if base is None or off < 0:
        return None
    arr = state.device.get(buf)
    item = arr.dtype.itemsize
    per_segment = max(1, 128 // item)
    info = _ld_analyze_base(base, per_segment, cache)
    if not info[2]:
        return None
    (_, _, _, start0, lo0, hi0, warp_starts, shift, trans0, stride) = info
    if not stride or hi0 + off >= (1 << 63):
        return None  # no strided view, or the elementwise add would wrap
    lo = lo0 + off
    hi = hi0 + off
    if lo < 0 or hi >= len(arr):
        raise SimulationError(
            f"kernel {state.kernel.name!r}: out-of-bounds access to "
            f"global buffer {buf!r} (size {len(arr)}, index range "
            f"[{lo}, {hi}])"
        )
    if off % per_segment == 0:
        trans = trans0
    else:
        shifted = warp_starts + off
        trans = int(
            ((shifted + 31 >> shift) - (shifted >> shift)).sum()
        ) + warp_starts.size
    value = np.lib.stride_tricks.as_strided(
        arr[start0 + off:],
        shape=state.shape,
        strides=(stride * item, item),
    ).astype(np.float64)
    events = state.events
    events["mem.global.ld.trans"] += trans
    events["mem.global.bytes"] += trans * 128
    events["mem.global.bytes_useful"] += mask.size * item
    events["inst.ld.global"] += state._cur_warps
    return value


def _make_ld_attempt(buf):
    """Bind an affine-attempt helper to one load site (own analysis
    cache) for use from generated loop code."""
    cache = {}

    def attempt(state, mask, a, b):
        return _ld_affine_attempt(state, mask, buf, a, b, cache)

    return attempt


def _c_ld_global_fast(instr):
    """Width-1 global load, batched full-mask fast path.

    Replicates ``_BatchedRun._ld_global`` bit-for-bit for the common
    case (sanitizer off, every lane active, int64 full-shape indices):
    same bounds error, same gathered float64 values, same transaction /
    byte counters. When the per-lane indices are consecutive within
    each block row — the coalesced pattern every tiled reduction hits —
    the row ends bound the whole index range, the 128-byte-segment
    count comes analytically from the 32-lane warp starts, and the
    gather becomes a strided copy when the rows are evenly spaced.

    A loop-carried index with affine provenance (``idx = base +
    uniform offset``, recorded by the region store via :func:`_af`)
    amortizes the whole analysis: consecutiveness, ends and warp
    starts are derived from the loop-invariant ``base`` once, then
    each iteration only shifts them by the offset — and when the
    offset is a multiple of the 128-byte segment span the transaction
    count is byte-for-byte the base's count (both ``>>`` terms shift
    equally). Offsets that could wrap int64 skip the provenance path
    (the elementwise engine math wraps; shifted-ends math must not).
    Anything else delegates to the engine.
    """
    buf = instr.buf
    dst = instr.dst
    idx_name = instr.idx.name if isinstance(instr.idx, Reg) else None
    base_info = {}  # id-keyed single entry: analysis of the affine base

    def run(state, mask):
        idx = state.regs.get(idx_name) if idx_name is not None else None
        if (
            state.san is not None
            or not state._cur_all
            or not isinstance(idx, np.ndarray)
            or idx.ndim != 2
            or idx.shape != state.shape
            or idx.dtype != np.int64
            or instr.width != 1
        ):
            state._ld_global(instr, mask)
            return
        arr = state.device.get(buf)
        item = arr.dtype.itemsize
        per_segment = max(1, 128 // item)
        prov = state._cache.get(("af", idx_name))
        if prov is not None and prov[0] is idx and prov[2] >= 0:
            _, base, off = prov
            info = _ld_analyze_base(base, per_segment, base_info)
            if info[2] and info[5] + off < (1 << 63):
                # shifted ends must not wrap (elementwise int64 would)
                (_, _, _, start0, lo0, hi0, warp_starts, shift, trans0,
                 stride) = info
                lo = lo0 + off
                hi = hi0 + off
                if lo < 0 or hi >= len(arr):
                    raise SimulationError(
                        f"kernel {state.kernel.name!r}: out-of-bounds "
                        f"access to global buffer {buf!r} (size "
                        f"{len(arr)}, index range [{lo}, {hi}])"
                    )
                if off % per_segment == 0:
                    trans = trans0
                else:
                    shifted = warp_starts + off
                    trans = int(
                        ((shifted + 31 >> shift) - (shifted >> shift)).sum()
                    ) + warp_starts.size
                if stride:
                    view = np.lib.stride_tricks.as_strided(
                        arr[start0 + off:],
                        shape=idx.shape,
                        strides=(stride * item, item),
                    )
                    value = view.astype(np.float64)
                else:
                    value = arr[idx].astype(np.float64, copy=False)
                state.regs[dst.name] = value
                events = state.events
                events["mem.global.ld.trans"] += trans
                events["mem.global.bytes"] += trans * 128
                events["mem.global.bytes_useful"] += mask.size * item
                events["inst.ld.global"] += state._cur_warps
                return
        consec = (
            state.nthreads % 32 == 0
            and per_segment & (per_segment - 1) == 0
            and bool((idx[:, 1:] == idx[:, :-1] + 1).all())
        )
        if consec:
            lo = idx[:, 0].min()   # row ends bound consecutive rows
            hi = idx[:, -1].max()
        else:
            lo = idx.min()
            hi = idx.max()
        if lo < 0 or hi >= len(arr):
            raise SimulationError(
                f"kernel {state.kernel.name!r}: out-of-bounds access to "
                f"global buffer {buf!r} (size {len(arr)}, index range "
                f"[{lo}, {hi}])"
            )
        if consec:
            shift = per_segment.bit_length() - 1
            warp_starts = idx[:, ::32].ravel()
            trans = int(
                ((warp_starts + 31 >> shift) - (warp_starts >> shift)).sum()
            ) + warp_starts.size
            starts = idx[:, 0]
            nblocks, nthreads = idx.shape
            stride = int(starts[1] - starts[0]) if nblocks > 1 else 0
            if nblocks > 1 and stride > 0 and bool(
                (starts[1:] - starts[:-1] == stride).all()
            ):
                view = np.lib.stride_tricks.as_strided(
                    arr[int(starts[0]):],
                    shape=(nblocks, nthreads),
                    strides=(stride * item, item),
                )
                value = view.astype(np.float64)
            else:
                value = arr[idx].astype(np.float64, copy=False)
        else:
            trans = state._count_segments_sorted(idx, mask, per_segment, 1)
            value = arr[idx].astype(np.float64, copy=False)
        state.regs[dst.name] = value
        events = state.events
        events["mem.global.ld.trans"] += trans
        events["mem.global.bytes"] += trans * 128
        events["mem.global.bytes_useful"] += mask.size * arr.dtype.itemsize
        events["inst.ld.global"] += state._cur_warps

    run._specialized = "ld_global"
    run._instr = instr
    return run


def _c_atom_global_fast(instr):
    """Global atomic, batched single-address fast path.

    The block-result pattern — every active lane updates the same
    address — lets the same-address contention tracker update in one
    step instead of the engine's per-block-row ``np.unique`` loop. The
    dict update replicates the engine row walk exactly, including the
    tracking-cap semantics: rows are block-ascending, the cap check
    runs before each row, and an insertion that overflows the cap
    stops all further updates (so a fresh entry keeps only its first
    row's count). Multi-address updates delegate to the engine.
    """
    op0 = instr.op
    buf = instr.buf
    atomic_ufunc = _ATOMIC_UFUNC.get(op0)

    def run(state, mask):
        if (
            state.san is not None
            or instr.op is not op0
            or instr.buf is not buf
            or atomic_ufunc is None
            or len(state.shape) != 2
        ):
            state._atom_global(instr, mask)
            return
        idx = state._global_indices(instr.idx, mask, buf)
        # Column-structured masks (broadcast row views, the shape every
        # If hands its sides) select whole columns: the boolean fancy
        # index over (blocks, threads) collapses to a column gather and
        # the per-row activity reductions to one row.
        row = None if state._cur_all else _col_row(state, mask)
        cols = None if row is None else np.flatnonzero(row)
        if state._cur_all:
            active = idx.reshape(-1)
        elif cols is not None:
            active = np.ascontiguousarray(idx[:, cols]).reshape(-1)
        else:
            active = idx[mask]
        if active.size == 0 or not bool((active == active[0]).all()):
            state._atom_global(instr, mask)
            return
        address = int(active[0])
        src = state._value_array(instr.src, mask)
        arr = state.device.get(buf)
        if cols is not None:
            sel = np.ascontiguousarray(src[:, cols]).reshape(-1)
        else:
            sel = src[mask]
        atomic_ufunc.at(arr, active, sel.astype(arr.dtype))
        state.events["atom.global.ops"] += active.size
        counts = state.atomic_addr_counts
        if len(counts) > _ATOMIC_TRACK_CAP:
            return
        if cols is not None:
            rows = np.arange(state.nblocks)
            per_row = np.full(state.nblocks, cols.size)
        else:
            rows = np.flatnonzero(mask.any(axis=1))
            per_row = mask.sum(axis=1)[rows]
        block_ids = [int(state.block_ids[r]) for r in rows]
        key = (buf, address)
        entry = counts.get(key)
        start = 0
        if entry is None:
            counts[key] = entry = [int(per_row[0]), block_ids[0], False]
            start = 1
            if len(counts) > _ATOMIC_TRACK_CAP:
                return  # cap overflow: remaining rows are skipped
        if start < len(rows):
            entry[0] += int(per_row[start:].sum())
            if any(b != entry[1] for b in block_ids[start:]):
                entry[2] = True

    run._specialized = "atom_global"
    run._instr = instr
    return run


# ---------------------------------------------------------------------
# region formation
# ---------------------------------------------------------------------


@dataclass
class Region:
    """One cell of the trace partition."""

    kind: str     # "fused" | "single-alu" | a BOUNDARY_KINDS value
    instrs: list


@dataclass
class FusedKernel:
    """A kernel's fused closure trace plus fusion statistics."""

    kernel_name: str
    trace: list
    stats: dict = field(default_factory=dict)
    regions: list = field(default_factory=list)


#: Instruction attributes that may hold a register operand.
_OPERAND_FIELDS = ("a", "b", "cond", "src", "idx", "offset")


def _reg_operands(instr):
    for field_name in _OPERAND_FIELDS:
        operand = getattr(instr, field_name, None)
        if isinstance(operand, Reg):
            yield operand.name


def _collect_visible_reads(trace, reads):
    """Register names some instruction reads *through the register
    file*: live-ins of (would-be) fused regions, and every operand of
    boundary, control and single-ALU instructions. A read of a name
    bound earlier in the same region resolves to a region-local value
    and never touches ``state.regs``, so it is excluded — mirroring
    the region former's partition exactly."""
    bound = None  # names bound so far in the current fusible run
    for closure in trace:
        instr = closure._instr
        if isinstance(instr, FUSIBLE_OPS):
            if bound is None:
                bound = set()
            for name in _reg_operands(instr):
                if name not in bound:
                    reads.add(name)
            bound.add(instr.dst.name)
            continue
        bound = None
        reads.update(_reg_operands(instr))
        if isinstance(instr, If):
            _collect_visible_reads(closure._then_trace, reads)
            _collect_visible_reads(closure._else_trace, reads)
        elif isinstance(instr, While):
            _collect_visible_reads(closure._cond_trace, reads)
            _collect_visible_reads(closure._body_trace, reads)


class _Fuser:
    def __init__(self, kernel_name, visible=None):
        self.kernel_name = kernel_name
        self.visible = visible
        self.regions = []
        self.n_regions = 0
        self.boundaries = {}
        self.specialized = {
            "shfl": 0, "ld_global": 0, "atom_global": 0, "control": 0,
            "st_shared": 0, "ld_shared": 0, "loop": 0,
        }
        self.fused_regions = 0
        self.fused_instructions = 0
        self.singletons = 0
        self.max_region = 0
        self.dead_stores = 0

    def fuse_trace(self, trace):
        out = []
        run = []  # pending fusible (closure, instr) pairs
        for closure in trace:
            instr = closure._instr
            if isinstance(instr, FUSIBLE_OPS):
                run.append((closure, instr))
                continue
            self._flush(run, out)
            self._boundary(closure, instr, out)
        self._flush(run, out)
        return out

    def _flush(self, run, out):
        if not run:
            return
        instrs = [instr for _, instr in run]
        # Single instructions get a generated region too (not the
        # original compiled closure): the region store keeps special
        # registers and uniform values as zero-stride views, which the
        # column fast paths downstream depend on recognizing.
        gen = _RegionCodegen(
            self.kernel_name, instrs, self.n_regions, self.visible
        )
        out.append(gen.build())
        self.dead_stores += gen.dead_stores
        if len(run) == 1:
            self.singletons += 1
            self._record("single-alu", instrs)
        else:
            self.fused_regions += 1
            self.fused_instructions += len(instrs)
            self.max_region = max(self.max_region, len(instrs))
            self._record("fused", instrs)
        run.clear()

    def _boundary(self, closure, instr, out):
        kind = BOUNDARY_KINDS.get(type(instr), "other")
        self.boundaries[kind] = self.boundaries.get(kind, 0) + 1
        if isinstance(instr, If):
            then_trace = self.fuse_trace(closure._then_trace)
            else_trace = self.fuse_trace(closure._else_trace)
            out.append(_c_if_fast(instr, then_trace, else_trace))
            self.specialized["control"] += 1
        elif isinstance(instr, While):
            cond_trace = self.fuse_trace(closure._cond_trace)
            body_trace = self.fuse_trace(closure._body_trace)
            fast = _c_while_fast(
                instr, cond_trace, body_trace,
                kernel_name=self.kernel_name, index=self.n_regions,
            )
            out.append(fast)
            self.specialized["control"] += 1
            if fast._loop_fused:
                self.specialized["loop"] += 1
        elif isinstance(instr, Shfl):
            out.append(_c_shfl_fast(instr))
            self.specialized["shfl"] += 1
        elif isinstance(instr, LdGlobal) and instr.width == 1:
            out.append(_c_ld_global_fast(instr))
            self.specialized["ld_global"] += 1
        elif isinstance(instr, AtomGlobal):
            out.append(_c_atom_global_fast(instr))
            self.specialized["atom_global"] += 1
        elif isinstance(instr, StShared):
            out.append(_c_st_shared_fast(instr))
            self.specialized["st_shared"] += 1
        elif isinstance(instr, LdShared):
            out.append(_c_ld_shared_fast(instr))
            self.specialized["ld_shared"] += 1
        else:
            out.append(closure)
        self._record(kind, [instr])

    def _record(self, kind, instrs):
        self.regions.append(Region(kind, instrs))
        self.n_regions += 1


def trace_instrs(trace):
    """Every instruction of a compiled or fused trace, sub-traces
    included, with multiplicity (unrolled loops splice the same instr
    several times). Fused mega-regions expand to their instructions."""
    out = []
    for closure in trace:
        instrs = getattr(closure, "_instrs", None)
        if instrs is not None:
            out.extend(instrs)
            continue
        instr = closure._instr
        out.append(instr)
        if isinstance(instr, If):
            out.extend(trace_instrs(closure._then_trace))
            out.extend(trace_instrs(closure._else_trace))
        elif isinstance(instr, While):
            out.extend(trace_instrs(closure._cond_trace))
            out.extend(trace_instrs(closure._body_trace))
    return out


# ---------------------------------------------------------------------
# memoized entry point
# ---------------------------------------------------------------------

_FUSE_MEMO = {}


def fuse_kernel(kernel) -> FusedKernel:
    """Fuse (and memoize) a kernel's compiled trace into regions.

    Keyed by kernel object identity like :func:`compile_kernel`, so all
    launches of a cached plan share one fused trace.
    """
    return memoize_by_identity(_FUSE_MEMO, kernel, _fuse_fresh)


def _fuse_fresh(kernel) -> FusedKernel:
    from ..obs import default_metrics, get_tracer  # obs is standalone

    compiled = compile_kernel(kernel)
    with get_tracer().span("fuse.kernel", kernel=kernel.name) as span:
        visible = set()
        _collect_visible_reads(compiled.trace, visible)
        fuser = _Fuser(kernel.name, visible)
        trace = fuser.fuse_trace(compiled.trace)
        stats = dict(compiled.stats)
        stats.update(
            regions=fuser.n_regions,
            fused_regions=fuser.fused_regions,
            fused_instructions=fuser.fused_instructions,
            singleton_alu=fuser.singletons,
            max_region_len=fuser.max_region,
            dead_stores=fuser.dead_stores,
            boundaries=dict(fuser.boundaries),
            specialized=dict(fuser.specialized),
        )
        span.set(
            regions=fuser.n_regions,
            fused_regions=fuser.fused_regions,
            fused_instructions=fuser.fused_instructions,
        )
    metrics = default_metrics()
    metrics.inc("fuse.kernels")
    metrics.inc("fuse.regions", fuser.n_regions)
    metrics.inc("fuse.fused_regions", fuser.fused_regions)
    metrics.inc("fuse.fused_instructions", fuser.fused_instructions)
    metrics.inc_many(fuser.boundaries, prefix="fuse.boundary.")
    metrics.inc_many(fuser.specialized, prefix="fuse.specialized.")
    if fuser.fused_regions:
        metrics.observe(
            "fuse.region_len",
            fuser.fused_instructions / fuser.fused_regions,
        )
    return FusedKernel(
        kernel_name=kernel.name,
        trace=trace,
        stats=stats,
        regions=fuser.regions,
    )
