"""GPU architecture descriptors for the analytic timing model.

The three architectures match the paper's testbeds (Section IV-A):
Kepler K40c, Maxwell GTX980 and Pascal P100. The parameters encode the
microarchitectural differences the paper's analysis hinges on:

* **Shared-memory atomics** — Kepler implements them in software with a
  lock-update-unlock loop, which is expensive and causes branch
  divergence under contention [13]; Maxwell added native hardware
  support; Pascal keeps it and adds scoped atomics (Section II-A-2).
* **Global-memory atomics** — buffered in the L2 atomic units since
  Kepler, so they are cheap unless many updates hit the same address,
  which serializes at the L2.
* **Warp shuffle** — available since Kepler; cheaper than a shared-memory
  round trip and it frees shared memory (Section II-A-1).
* **Clocks / SM counts / bandwidth** — from the vendor whitepapers
  [19], [24], [26]; these drive the small-array behaviour (Pascal's high
  clock makes it competitive with the CPU — Section IV-C-1).

Numbers are per-architecture *model parameters*, not measurements; the
benchmark harness checks that the resulting performance shapes match the
paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Architecture:
    name: str
    codename: str
    sm_count: int
    clock_ghz: float
    mem_bandwidth_gbps: float
    # Occupancy limits (per SM)
    max_threads_per_sm: int
    max_blocks_per_sm: int
    shared_mem_per_sm: int  # bytes
    max_warps_per_sm: int
    # Issue model
    ipc_per_sm: float  # warp-instructions issued per cycle per SM
    pipeline_latency: float  # cycles between dependent instructions
    hide_warps: int  # resident warps needed to fully hide latency
    # Instruction costs (cycles per warp-instruction at full occupancy)
    alu_cpi: float
    shfl_cpi: float
    ld_global_cpi: float  # per transaction issue cost
    ld_shared_cpi: float
    bar_cpi: float
    # Atomic support
    native_shared_atomics: bool
    shared_atomic_cpi: float  # per op when native
    shared_atomic_sw_base: float  # Kepler software lock loop base cost
    shared_atomic_sw_retry: float  # extra cost per serialized retry
    shared_atomic_same_addr_cpi: float  # block-level serialization rate
    global_atomic_cpi: float  # issue cost per atomic
    global_atomic_same_addr_cpi: float  # L2 serialization per op, same address
    scoped_atomics: bool  # Pascal block/system scopes
    block_scope_atomic_discount: float  # cost factor for _block scope
    # Host interaction
    kernel_launch_overhead_us: float
    # Memory system efficiency by access pattern
    dram_efficiency_scalar: float  # achieved fraction of peak, scalar loads
    dram_efficiency_vector: float  # with float4-style vector loads
    warp_size: int = 32
    extra: dict = field(default_factory=dict, compare=False)

    def max_resident_blocks(self, block_size: int, shared_bytes: int) -> int:
        """Occupancy calculation: resident blocks per SM."""
        if block_size < 1:
            raise ValueError("block_size must be positive")
        limit = min(
            self.max_blocks_per_sm,
            self.max_threads_per_sm // block_size if block_size else 0,
        )
        if shared_bytes > 0:
            limit = min(limit, self.shared_mem_per_sm // shared_bytes)
        return max(limit, 0)


KEPLER = Architecture(
    name="Kepler K40c",
    codename="kepler",
    sm_count=15,
    clock_ghz=0.745,
    mem_bandwidth_gbps=288.0,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    shared_mem_per_sm=48 * 1024,
    max_warps_per_sm=64,
    ipc_per_sm=4.0,
    pipeline_latency=11.0,
    hide_warps=12,
    alu_cpi=1.0,
    shfl_cpi=1.0,
    ld_global_cpi=2.0,
    ld_shared_cpi=1.5,
    bar_cpi=8.0,
    native_shared_atomics=False,
    shared_atomic_cpi=2.0,  # unused on Kepler (software path below)
    shared_atomic_sw_base=14.0,
    shared_atomic_sw_retry=22.0,
    shared_atomic_same_addr_cpi=4.0,
    global_atomic_cpi=4.0,
    global_atomic_same_addr_cpi=6.0,
    scoped_atomics=False,
    block_scope_atomic_discount=1.0,
    kernel_launch_overhead_us=5.5,
    dram_efficiency_scalar=0.30,
    dram_efficiency_vector=0.42,
    extra={"dram_efficiency_staged": 0.97},
)

MAXWELL = Architecture(
    name="Maxwell GTX980",
    codename="maxwell",
    sm_count=16,
    clock_ghz=1.126,
    mem_bandwidth_gbps=224.0,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=96 * 1024,
    max_warps_per_sm=64,
    ipc_per_sm=4.0,
    pipeline_latency=6.0,
    hide_warps=8,
    alu_cpi=1.0,
    shfl_cpi=1.0,
    ld_global_cpi=2.0,
    ld_shared_cpi=1.2,
    bar_cpi=8.0,
    native_shared_atomics=True,
    shared_atomic_cpi=2.5,
    shared_atomic_sw_base=0.0,
    shared_atomic_sw_retry=0.0,
    shared_atomic_same_addr_cpi=2.0,
    global_atomic_cpi=3.0,
    global_atomic_same_addr_cpi=4.0,
    scoped_atomics=False,
    block_scope_atomic_discount=1.0,
    kernel_launch_overhead_us=4.5,
    dram_efficiency_scalar=0.345,
    dram_efficiency_vector=0.37,
    extra={"dram_efficiency_staged": 0.995},
)

PASCAL = Architecture(
    name="Pascal P100",
    codename="pascal",
    sm_count=56,
    clock_ghz=1.328,
    mem_bandwidth_gbps=732.0,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    shared_mem_per_sm=64 * 1024,
    max_warps_per_sm=64,
    ipc_per_sm=4.0,
    pipeline_latency=6.0,
    hide_warps=8,
    alu_cpi=1.0,
    shfl_cpi=1.0,
    ld_global_cpi=2.0,
    ld_shared_cpi=1.2,
    bar_cpi=8.0,
    native_shared_atomics=True,
    shared_atomic_cpi=2.0,
    shared_atomic_sw_base=0.0,
    shared_atomic_sw_retry=0.0,
    shared_atomic_same_addr_cpi=1.5,
    global_atomic_cpi=2.5,
    global_atomic_same_addr_cpi=3.0,
    scoped_atomics=True,
    block_scope_atomic_discount=0.6,
    kernel_launch_overhead_us=2.5,
    dram_efficiency_scalar=0.346,
    dram_efficiency_vector=0.44,
    extra={"dram_efficiency_staged": 0.97},
)

ARCHITECTURES = {
    "kepler": KEPLER,
    "maxwell": MAXWELL,
    "pascal": PASCAL,
}


def get_architecture(name: str) -> Architecture:
    key = name.lower()
    if key not in ARCHITECTURES:
        raise KeyError(
            f"unknown architecture {name!r}; choose from "
            f"{sorted(ARCHITECTURES)}"
        )
    return ARCHITECTURES[key]
