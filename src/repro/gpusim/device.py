"""Simulated device memory: named global buffers backed by numpy arrays."""

from __future__ import annotations

import numpy as np


class DeviceError(Exception):
    """Raised on invalid device-memory operations (double alloc, OOB, ...)."""


class Device:
    """Holds the global-memory buffers a plan's kernels operate on."""

    def __init__(self):
        self._buffers = {}

    def alloc(self, name: str, size: int, dtype=np.float32) -> np.ndarray:
        if name in self._buffers:
            raise DeviceError(f"buffer {name!r} already allocated")
        if size < 1:
            raise DeviceError(f"buffer {name!r} needs positive size, got {size}")
        self._buffers[name] = np.zeros(size, dtype=dtype)
        return self._buffers[name]

    def upload(self, name: str, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data)
        if data.ndim != 1:
            raise DeviceError("only 1-D uploads are supported")
        self._buffers[name] = data.copy()
        return self._buffers[name]

    def download(self, name: str) -> np.ndarray:
        return self.get(name).copy()

    def get(self, name: str) -> np.ndarray:
        if name not in self._buffers:
            raise DeviceError(f"unknown buffer {name!r}")
        return self._buffers[name]

    def memset(self, name: str, value=0) -> None:
        self.get(name)[:] = value

    def free(self, name: str) -> None:
        if name not in self._buffers:
            raise DeviceError(f"unknown buffer {name!r}")
        del self._buffers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def buffer_names(self) -> list:
        return sorted(self._buffers)
