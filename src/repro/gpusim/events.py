"""Event counters collected while executing kernels on the simulator.

The timing model in :mod:`repro.gpusim.timing` consumes these counters.
All ``inst.*`` counters are **warp-instruction** counts (one unit per warp
with at least one active lane), matching how SIMT hardware issues work.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: Counter key reference (kept here so tests and the timing model agree).
EVENT_KEYS = (
    "inst.alu",          # ALU/select/move warp-instructions
    "inst.shfl",         # warp shuffle instructions
    "inst.ld.global",    # global load warp-instructions
    "inst.st.global",    # global store warp-instructions
    "inst.ld.shared",    # shared load warp-instructions
    "inst.st.shared",    # shared store warp-instructions
    "inst.bar",          # barriers executed (block-wide)
    "mem.global.ld.trans",   # 128B global load transactions
    "mem.global.st.trans",   # 128B global store transactions
    "mem.global.bytes",      # bytes moved (segment granularity)
    "mem.shared.replays",    # shared-memory bank-conflict replays
    "atom.shared.ops",       # shared atomic operations (thread level)
    "atom.shared.warp_serial",  # per-warp same-address serialization
    "atom.shared.block_max_same_addr",  # per-block same-address total (summed)
    "atom.global.ops",       # global atomic operations (thread level)
    "atom.global.max_same_addr",  # launch-wide max ops on one address
    "branch.divergent",      # warp-divergent If regions and While
                             # back-edge tests (a warp whose active lanes
                             # split between continuing and exiting an
                             # iteration counts once per test)
    "warps",                 # warps launched
    "blocks",                # blocks launched
    "threads",               # threads launched
)


@dataclass
class StepProfile:
    """Events and shape of one kernel launch."""

    kernel_name: str
    grid: int
    block: int
    shared_bytes: int
    registers: int
    events: Counter = field(default_factory=Counter)
    sampled_blocks: int = 0  # 0 means full execution
    meta: dict = field(default_factory=dict)

    @property
    def warps_per_block(self) -> int:
        return (self.block + 31) // 32

    def scaled(self) -> Counter:
        """Events extrapolated to the full grid when sampled."""
        if not self.sampled_blocks or self.sampled_blocks >= self.grid:
            return Counter(self.events)
        factor = self.grid / self.sampled_blocks
        scaled = Counter()
        for key, value in self.events.items():
            if key == "atom.global.max_same_addr":
                # A launch-wide *max* is not additive across blocks, so
                # linear extrapolation by the sampling factor is wrong
                # (it would inflate block-private atomic traffic by the
                # grid size). The executor already extrapolates
                # cross-block same-address totals when it records this
                # key (see Executor._launch_max_same_addr); carry it
                # through unscaled.
                scaled[key] = value
            else:
                scaled[key] = value * factor
        scaled["blocks"] = self.grid
        scaled["threads"] = self.grid * self.block
        scaled["warps"] = self.grid * self.warps_per_block
        return scaled


@dataclass
class PlanProfile:
    """Profiles for every kernel step of one executed plan."""

    plan_name: str
    steps: list = field(default_factory=list)  # StepProfile
    result: float = None
    meta: dict = field(default_factory=dict)

    def total(self, key: str) -> float:
        return sum(step.scaled().get(key, 0) for step in self.steps)

    def num_launches(self) -> int:
        return len(self.steps)
