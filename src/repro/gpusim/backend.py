"""Execution backends behind a formal protocol + registry.

The :class:`~repro.gpusim.engine.Executor` used to hardcode its backend
dispatch (``if self.backend == "compiled": ...``), which meant adding a
backend touched ``engine.py`` internals.  This module extracts the
contract into a small protocol so backends plug in through a registry
and :func:`~repro.gpusim.engine.parse_engine_spec` picks them up
automatically (the Vortex paper in PAPERS.md motivates keeping this
swappable for future native / software-warp-op targets).

Backend protocol
----------------
A backend decides *how a kernel body executes* inside the run states
(:class:`~repro.gpusim.engine._BlockRun` / ``_BatchedRun``); everything
else — event/profile recording, sanitizer hooks, masks, memory — stays
in the run state and is shared by every backend:

``name``
    Registry key, and the string recorded in ``StepProfile.meta
    ["exec.backend"]``.
``prepare(kernel)``
    Build (and memoize) whatever per-kernel artifact the backend needs.
    Called by the plan cache pre-warm so cached plans ship ready to run.
``trace(kernel)``
    Return the closure trace the run states should execute, or ``None``
    to fall back to the tree-walking interpreter (``_exec_body``).
    Closures in the trace follow the contract documented in
    :mod:`repro.gpusim.compile`: they receive ``(state, mask)``, may
    rely on ``state._cur_warps``/``state._cur_all``, must record their
    own events, and must route memory/shuffle/barrier effects through
    the state methods (or replicate them bit-exactly) so sanitizer
    hooks and event counters stay identical across backends.

Every backend must be **bit-identical** to the reference interpreter on
results, event counters and profiles; ``tests/gpusim`` enforces this.
"""

from __future__ import annotations


class Backend:
    """Base class / protocol for execution backends."""

    #: Registry key; also recorded in step profiles.
    name = "?"

    def prepare(self, kernel):
        """Build the per-kernel artifact (memoized); may return None."""
        return None

    def trace(self, kernel):
        """Closure trace to execute, or None for interpretation."""
        return None

    def unavailable_reason(self):
        """Why this backend cannot run here, or None when it can.

        A registered-but-unavailable backend (e.g. ``native`` on a
        machine with no C compiler) stays listed so error messages can
        name it, but :func:`get_backend` refuses it with this reason.
        """
        return None


class InterpretedBackend(Backend):
    """Reference tree-walking interpreter: no per-kernel artifact."""

    name = "interpreted"


class CompiledBackend(Backend):
    """Per-instruction specialized closures (see repro.gpusim.compile)."""

    name = "compiled"

    def prepare(self, kernel):
        from .compile import compile_kernel  # lazy: avoids import cycle

        return compile_kernel(kernel)

    def trace(self, kernel):
        return self.prepare(kernel).trace


class VectorBackend(Backend):
    """Fused-region mega-expressions (see repro.gpusim.fuse)."""

    name = "vector"

    def prepare(self, kernel):
        from .fuse import fuse_kernel  # lazy: avoids import cycle

        return fuse_kernel(kernel)

    def trace(self, kernel):
        return self.prepare(kernel).trace


# -- registry -----------------------------------------------------------

_REGISTRY: dict = {}


def register_backend(backend: Backend) -> Backend:
    """Register a backend instance under ``backend.name``."""
    if not backend.name or backend.name == "?":
        raise ValueError("backend must define a name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"backend must be one of {backend_names()}, got {name!r}"
        ) from None
    reason = backend.unavailable_reason()
    if reason is not None:
        raise ValueError(
            f"backend {name!r} is unavailable here: {reason}"
        )
    return backend


def backend_names() -> tuple:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


class NativeBackend(Backend):
    """Generated-C shared libraries (see repro.gpusim.native)."""

    name = "native"

    def prepare(self, kernel):
        from .native import lower_kernel  # lazy: avoids import cycle

        return lower_kernel(kernel)

    def trace(self, kernel):
        return self.prepare(kernel).trace

    def unavailable_reason(self):
        from .native import unavailable_reason

        return unavailable_reason()


register_backend(CompiledBackend())
register_backend(InterpretedBackend())
register_backend(VectorBackend())
register_backend(NativeBackend())
