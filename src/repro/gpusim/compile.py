"""Closure compilation of VIR kernels: compile once, dispatch never.

The interpreter in :mod:`repro.gpusim.engine` pays an ``isinstance``
dispatch chain, operand re-resolution and an active-warp count for every
instruction of every loop iteration of every launch. This module walks a
kernel body **once** and emits a flat *trace* — a list of specialized
closures, one per instruction, with the opcode dispatch, the operand
kinds (``Reg``/``Imm``), the numpy implementation and the event-counter
key all resolved at compile time. Executing a body then degenerates to

    for fn in trace: fn(state, mask)

in both the sequential (:class:`~repro.gpusim.engine._BlockRun`) and
batched (:class:`~repro.gpusim.engine._BatchedRun`) engines: the
closures only touch the per-run *state* object, so one compilation
serves both modes, every block, and every batch chunk.

Closure contract
----------------
A closure runs under three preconditions, established by the engines'
``_run_trace``:

* ``mask`` has at least one active lane (the interpreter's per-
  instruction ``mask.any()`` check is hoisted to trace entry — valid
  because straight-line code never changes the mask);
* ``state._cur_warps`` holds the active-warp count of ``mask`` and
  ``state._cur_all`` whether every lane is active, so per-instruction
  event counting is a bare ``events[key] += state._cur_warps``;
* register arrays are never mutated in place by the engines (writes
  always rebind), so closures may store aliased/broadcast arrays
  without the interpreter's defensive copy.

Structured control flow compiles to closures holding pre-compiled
sub-traces (``If``/``While`` delegate to the engines' ``_exec_if_c`` /
``_exec_while_c``, which mirror the interpreted region semantics
exactly). On top of that, loops whose trip count is a **block-uniform
compile-time constant** — proven by the abstract interpreter in
:mod:`repro.vir.analysis`, e.g. the Listing 4 reduction-tree loops whose
induction registers are seeded from immediates — are **unrolled**: the
trace splices ``cond_block + trips × (body + cond_block)`` straight-line
into the parent, which is instruction-for-instruction the interpreter's
dynamic sequence (a uniform-true condition leaves the active mask equal
to the entry mask, and the dropped ``active &= cond`` updates produce no
events or register changes). Unrolling also preserves the
``branch.divergent`` loop accounting bit-for-bit: only *divergent*
back-edge tests count, and a loop is only unrolled when its condition
is block-uniform — i.e. provably never divergent — so both backends
report the same (zero) contribution for it.

Memory, atomic, shuffle and barrier closures all delegate to the run
state's methods (``_c_method``/``_c_bar``), so the opt-in sanitizer
hooks (:mod:`repro.sanitize`) and the runtime shfl mode/width
validation live in exactly one place and cover the compiled backend
for free.

Results and event counters are bit-identical to the interpreter on every
kernel; ``tests/gpusim/test_compiled_engine.py`` enforces this
exhaustively over the Figure 6 catalog.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

import numpy as np

from ..vir.analysis import eval_const_instr, uniform_trip_count, written_regs
from ..vir.instructions import (
    AtomGlobal,
    AtomShared,
    Bar,
    BinOp,
    Comment,
    If,
    Imm,
    LdGlobal,
    LdParam,
    LdShared,
    Mov,
    Reg,
    Sel,
    Shfl,
    Special,
    StGlobal,
    StShared,
    UnOp,
    While,
    walk_instrs,
)
from .engine import (
    SimulationError,
    _coerce_bool,
    _int_div,
    _is_integer,
    memoize_by_identity,
)

#: Unrolling bounds: a loop unrolls only when the abstract interpreter
#: proves a trip count <= MAX_TRIPS and the spliced closures (trips ×
#: body, nested splices included) stay under MAX_SPLICE — past that, the
#: loop closure is cheaper than the trace it would expand to.
MAX_TRIPS = 256
MAX_SPLICE = 4096


# ---------------------------------------------------------------------
# operand readers and ALU implementations
# ---------------------------------------------------------------------


def _reader(operand):
    """Compile an operand to a ``state -> value`` function."""
    if isinstance(operand, Imm):
        value = operand.value
        return lambda state: value
    if isinstance(operand, Reg):
        name = operand.name

        def read(state):
            try:
                return state.regs[name]
            except KeyError:
                raise SimulationError(
                    f"kernel {state.kernel.name!r}: read of unwritten "
                    f"register {operand}"
                ) from None

        return read
    raise SimulationError(f"bad operand {operand!r}")


def _div(a, b):
    if _is_integer(a) and _is_integer(b):
        return _int_div(a, b)
    return a / b


def _arith(fn):
    """Non-comparison ops see predicates as 0/1 ints (C semantics)."""

    def apply(a, b):
        return fn(_coerce_bool(a), _coerce_bool(b))

    return apply


#: op -> binary implementation, replicating ``engine._np_binop`` exactly
#: (same coercions, same numpy entry points) with the string dispatch
#: resolved at compile time.
_BINOP_IMPL = {
    "add": _arith(operator.add),
    "sub": _arith(operator.sub),
    "mul": _arith(operator.mul),
    "div": _arith(_div),
    "idiv": _arith(np.floor_divide),
    "mod": _arith(operator.mod),
    "min": _arith(np.minimum),
    "max": _arith(np.maximum),
    "and": _arith(np.bitwise_and),
    "or": _arith(np.bitwise_or),
    "xor": _arith(np.bitwise_xor),
    "shl": _arith(np.left_shift),
    "shr": _arith(np.right_shift),
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "eq": operator.eq,
    "ne": operator.ne,
    "land": np.logical_and,
    "lor": np.logical_or,
}

_UNOP_IMPL = {
    "neg": lambda a: -np.asarray(_coerce_bool(a)),
    "lnot": np.logical_not,
    "bnot": lambda a: np.bitwise_not(np.asarray(_coerce_bool(a))),
}


# ---------------------------------------------------------------------
# per-instruction closures
# ---------------------------------------------------------------------


def _c_binop(instr):
    ra = _reader(instr.a)
    rb = _reader(instr.b)
    opf = _BINOP_IMPL[instr.op]
    dst = instr.dst

    def run(state, mask):
        state._write(dst, opf(ra(state), rb(state)), mask)
        state.events["inst.alu"] += state._cur_warps

    return run


def _c_unop(instr):
    ra = _reader(instr.a)
    opf = _UNOP_IMPL[instr.op]
    dst = instr.dst

    def run(state, mask):
        state._write(dst, opf(ra(state)), mask)
        state.events["inst.alu"] += state._cur_warps

    return run


def _c_mov(instr):
    ra = _reader(instr.a)
    dst = instr.dst

    def run(state, mask):
        state._write(dst, ra(state), mask)
        state.events["inst.alu"] += state._cur_warps

    return run


def _c_sel(instr):
    rc = _reader(instr.cond)
    ra = _reader(instr.a)
    rb = _reader(instr.b)
    dst = instr.dst

    def run(state, mask):
        state._write(dst, np.where(rc(state), ra(state), rb(state)), mask)
        state.events["inst.alu"] += state._cur_warps

    return run


def _c_special(instr):
    kind = instr.kind
    dst = instr.dst

    def run(state, mask):
        value = state._cache.get(kind)
        if value is None:
            value = state._special(kind)
            state._cache[kind] = value
        state._write(dst, value, mask)
        state.events["inst.alu"] += state._cur_warps

    return run


def _c_ldparam(instr):
    name = instr.name
    dst = instr.dst
    key = ("param", name)

    def run(state, mask):
        value = state._cache.get(key)
        if value is None:
            value = np.full(state.shape, state.step.args[name])
            state._cache[key] = value
        state._write(dst, value, mask)
        state.events["inst.alu"] += state._cur_warps

    return run


def _c_bar(instr):
    def run(state, mask):
        state._bar(mask)

    return run


def _c_method(instr, method):
    """Memory / atomic / shuffle ops reuse the engines' vectorized
    implementations — only the dispatch is compiled away."""

    def run(state, mask):
        getattr(state, method)(instr, mask)

    return run


_METHOD_OPS = {
    LdGlobal: "_ld_global",
    StGlobal: "_st_global",
    LdShared: "_ld_shared",
    StShared: "_st_shared",
    AtomGlobal: "_atom_global",
    AtomShared: "_atom_shared",
    Shfl: "_shfl",
}

_ALU_OPS = {
    BinOp: _c_binop,
    UnOp: _c_unop,
    Mov: _c_mov,
    Sel: _c_sel,
    Special: _c_special,
    LdParam: _c_ldparam,
    Bar: _c_bar,
}


def _c_if(instr, then_trace, else_trace):
    cond_read = _reader(instr.cond)
    has_else = bool(instr.otherwise)

    def run(state, mask):
        state._exec_if_c(cond_read, then_trace, else_trace, has_else, mask)

    # Sub-traces are exposed so trace rewriters (repro.gpusim.fuse) can
    # recurse into structured control flow and rebuild the closure.
    run._then_trace = then_trace
    run._else_trace = else_trace
    return run


def _c_while(instr, cond_trace, body_trace):
    cond_read = _reader(instr.cond)

    def run(state, mask):
        state._exec_while_c(cond_trace, cond_read, body_trace, mask)

    run._cond_trace = cond_trace
    run._body_trace = body_trace
    return run


# ---------------------------------------------------------------------
# kernel compilation with uniform-loop unrolling
# ---------------------------------------------------------------------


@dataclass
class CompiledKernel:
    """A kernel's flat closure trace plus compilation statistics."""

    kernel_name: str
    trace: list
    stats: dict = field(default_factory=dict)


class _KernelCompiler:
    def __init__(self, kernel, max_trips=MAX_TRIPS, max_splice=MAX_SPLICE):
        self.kernel = kernel
        self.max_trips = max_trips
        self.max_splice = max_splice
        self.stats = {
            "instructions": sum(1 for _ in walk_instrs(kernel.body)),
            "closures": 0,
            "loops": 0,
            "unrolled_loops": 0,
            "unrolled_trips": 0,
        }

    def compile(self) -> CompiledKernel:
        trace = self._compile_body(self.kernel.body, {})
        return CompiledKernel(
            kernel_name=self.kernel.name, trace=trace, stats=self.stats
        )

    def _compile_body(self, body, env) -> list:
        """Compile one region, threading the uniform-constant env
        (mutated in place) through it."""
        trace = []
        for instr in body:
            self._compile_instr(instr, env, trace)
        return trace

    def _emit(self, closure, trace, instr) -> None:
        # Every trace slot carries its source instruction: the region
        # former in repro.gpusim.fuse classifies slots by it.
        closure._instr = instr
        trace.append(closure)
        self.stats["closures"] += 1

    def _compile_instr(self, instr, env, trace) -> None:
        cls = type(instr)
        if cls is Comment:
            return  # the interpreter executes nothing for comments
        builder = _ALU_OPS.get(cls)
        if builder is not None:
            self._emit(builder(instr), trace, instr)
            eval_const_instr(instr, env)
            return
        method = _METHOD_OPS.get(cls)
        if method is not None:
            self._emit(_c_method(instr, method), trace, instr)
            eval_const_instr(instr, env)
            return
        if cls is If:
            then_trace = self._compile_body(instr.then, dict(env))
            else_trace = (
                self._compile_body(instr.otherwise, dict(env))
                if instr.otherwise
                else []
            )
            self._emit(_c_if(instr, then_trace, else_trace), trace, instr)
            eval_const_instr(instr, env)  # poison branch-written regs
            return
        if cls is While:
            self._compile_while(instr, env, trace)
            return
        raise SimulationError(f"cannot compile {cls.__name__}")

    def _compile_while(self, instr, env, trace) -> None:
        self.stats["loops"] += 1
        trips, _ = uniform_trip_count(instr, env, self.max_trips)
        if trips is not None:
            spliced = self._try_unroll(instr, trips, env)
            if spliced is not None:
                self.stats["unrolled_loops"] += 1
                self.stats["unrolled_trips"] += trips
                trace.extend(spliced)
                return
        # Regular loop closure. The one compiled body must be valid for
        # *every* iteration, so its env drops everything the loop writes.
        written = written_regs([instr])
        stripped = {k: v for k, v in env.items() if k not in written}
        cond_trace = self._compile_body(instr.cond_block, dict(stripped))
        body_trace = self._compile_body(instr.body, dict(stripped))
        self._emit(_c_while(instr, cond_trace, body_trace), trace, instr)
        eval_const_instr(instr, env)  # poison loop-written regs

    def _try_unroll(self, instr, trips, env):
        """Splice ``cond_block + trips × (body + cond_block)`` compiled
        under the *evolving* env — exactly the interpreter's dynamic
        instruction sequence for a uniform-constant loop (nested uniform
        loops unroll per iteration, with per-iteration envs). Returns
        the closure list, or None past the size cap; on success the
        parent env is advanced to the post-loop register state."""
        spliced = []
        budget = self.max_splice - self.stats["closures"]
        trial = dict(env)
        saved = dict(self.stats)
        try:
            self._splice_body(instr.cond_block, trial, spliced, budget)
            for _ in range(trips):
                self._splice_body(instr.body, trial, spliced, budget)
                self._splice_body(instr.cond_block, trial, spliced, budget)
        except _SpliceOverflow:
            self.stats.update(saved)  # drop closures counted mid-splice
            return None
        env.clear()
        env.update(trial)
        return spliced

    def _splice_body(self, body, env, trace, budget) -> None:
        for instr in body:
            self._compile_instr(instr, env, trace)
            if len(trace) > budget:
                raise _SpliceOverflow


class _SpliceOverflow(Exception):
    pass


# ---------------------------------------------------------------------
# memoization (shared with the batchability analysis)
# ---------------------------------------------------------------------

_COMPILE_MEMO = {}


def compile_kernel(kernel) -> CompiledKernel:
    """Compile (and memoize) a kernel's closure trace.

    Keyed by kernel object identity: plans are built once and reused
    (see :func:`repro.codegen.synthesize.build_plan_cached`), so every
    launch, block and batch chunk of a cached plan shares one trace.
    """
    return memoize_by_identity(_COMPILE_MEMO, kernel, _compile_fresh)


def _compile_fresh(kernel) -> CompiledKernel:
    from ..obs import default_metrics  # runtime import: obs is standalone

    compiled = _KernelCompiler(kernel).compile()
    metrics = default_metrics()
    metrics.inc("compile.kernels")
    metrics.observe("compile.trace_len", len(compiled.trace))
    return compiled
