"""GPU simulator substrate: device, functional SIMT engine, timing model."""

from .arch import ARCHITECTURES, Architecture, KEPLER, MAXWELL, PASCAL, get_architecture
from .backend import Backend, backend_names, get_backend, register_backend
from .device import Device, DeviceError
from .engine import (
    EXECUTION_BACKENDS,
    EXECUTION_MODES,
    Executor,
    SimulationError,
    analyze_batchability,
    parse_engine_spec,
    run_plan,
)
from .compile import CompiledKernel, compile_kernel
from .fuse import FusedKernel, fuse_kernel
from .events import EVENT_KEYS, PlanProfile, StepProfile
from .timing import (
    MEMSET_OVERHEAD_S,
    TimeBreakdown,
    kernel_time,
    plan_breakdown,
    plan_time,
)

__all__ = [
    "ARCHITECTURES",
    "Architecture",
    "Device",
    "DeviceError",
    "EVENT_KEYS",
    "EXECUTION_BACKENDS",
    "EXECUTION_MODES",
    "Backend",
    "CompiledKernel",
    "Executor",
    "FusedKernel",
    "analyze_batchability",
    "backend_names",
    "compile_kernel",
    "fuse_kernel",
    "get_backend",
    "parse_engine_spec",
    "register_backend",
    "KEPLER",
    "MAXWELL",
    "MEMSET_OVERHEAD_S",
    "PASCAL",
    "PlanProfile",
    "SimulationError",
    "StepProfile",
    "TimeBreakdown",
    "get_architecture",
    "kernel_time",
    "plan_breakdown",
    "plan_time",
    "run_plan",
]
