"""GPU simulator substrate: device, functional SIMT engine, timing model."""

from .arch import ARCHITECTURES, Architecture, KEPLER, MAXWELL, PASCAL, get_architecture
from .device import Device, DeviceError
from .engine import (
    EXECUTION_BACKENDS,
    EXECUTION_MODES,
    Executor,
    SimulationError,
    analyze_batchability,
    parse_engine_spec,
    run_plan,
)
from .compile import CompiledKernel, compile_kernel
from .events import EVENT_KEYS, PlanProfile, StepProfile
from .timing import (
    MEMSET_OVERHEAD_S,
    TimeBreakdown,
    kernel_time,
    plan_breakdown,
    plan_time,
)

__all__ = [
    "ARCHITECTURES",
    "Architecture",
    "Device",
    "DeviceError",
    "EVENT_KEYS",
    "EXECUTION_BACKENDS",
    "EXECUTION_MODES",
    "CompiledKernel",
    "Executor",
    "analyze_batchability",
    "compile_kernel",
    "parse_engine_spec",
    "KEPLER",
    "MAXWELL",
    "MEMSET_OVERHEAD_S",
    "PASCAL",
    "PlanProfile",
    "SimulationError",
    "StepProfile",
    "TimeBreakdown",
    "get_architecture",
    "kernel_time",
    "plan_breakdown",
    "plan_time",
    "run_plan",
]
