"""Abstract syntax tree for the Tangram-like DSL.

Nodes deliberately mirror the constructs that appear in Figures 1 and 3
of the paper: codelets with qualifiers (``__codelet``, ``__coop``,
``__tag``), variable declarations with memory qualifiers (``__shared``,
``__tunable``, ``_atomicAdd`` …), the ``Map``/``Partition``/``Sequence``/
``Vector`` primitives, tree-reduction ``for`` loops, and ternary guards.

Two traversal helpers are provided:

* :class:`NodeVisitor` — read-only dispatch on node class names;
* :class:`NodeTransformer` — rebuild-style traversal used by the AST
  passes in :mod:`repro.core`; returning a new node replaces the old one,
  returning ``None`` from a statement visit deletes the statement.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields

from .source import DUMMY_SPAN, Span
from .types import Type


@dataclass
class Node:
    """Base class; every node records its source span.

    Subclasses list their semantic fields first; ``span`` is always
    keyword-optional so passes can synthesize nodes conveniently.
    """

    def children(self):
        """Yield ``(field_name, child)`` for every Node/list-of-Node field."""
        for f in fields(self):
            if f.name == "span":
                continue
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield f.name, value
            elif isinstance(value, list):
                for index, item in enumerate(value):
                    if isinstance(item, Node):
                        yield f"{f.name}[{index}]", item

    def clone(self) -> "Node":
        """Deep copy; used by passes that must not mutate shared codelets."""
        return copy.deepcopy(self)


# ---------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions. ``ty`` is filled by semantic analysis."""


@dataclass
class IntLiteral(Expr):
    value: int
    unsigned: bool = False
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class FloatLiteral(Expr):
    value: float
    single: bool = True
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class BoolLiteral(Expr):
    value: bool
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class Ident(Expr):
    name: str
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class Unary(Expr):
    op: str  # one of: - ! ~
    operand: Expr = None
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class Binary(Expr):
    op: str  # arithmetic/comparison/logical/bitwise operator text
    lhs: Expr = None
    rhs: Expr = None
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class Ternary(Expr):
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class Call(Expr):
    """Free-function call: builtin (``min``, ``max``, ``partition``) or a
    spectrum call such as ``sum(map)``."""

    name: str
    args: list = field(default_factory=list)
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class MethodCall(Expr):
    """Member-function call on a primitive object, e.g.
    ``vthread.LaneId()``, ``in.Size()``, ``map.atomicAdd()``."""

    obj: Expr = None
    method: str = ""
    args: list = field(default_factory=list)
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


# ---------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    """Variable declaration, covering plain scalars, raw arrays, and the
    primitive objects ``Vector``/``Sequence``/``Map``.

    ``atomic`` is the paper's shared-memory atomic qualifier (Section
    III-B): one of ``None``/``"add"``/``"sub"``/``"max"``/``"min"``.
    """

    name: str
    declared_type: Type = None
    dims: list = field(default_factory=list)  # array dimension exprs
    init: Expr = None
    ctor_args: list = field(default_factory=list)  # Vector/Sequence/Map
    shared: bool = False
    tunable: bool = False
    atomic: str = None
    span: Span = field(default=DUMMY_SPAN, compare=False)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class Assign(Stmt):
    """Assignment or compound assignment to an lvalue."""

    target: Expr = None
    op: str = "="  # = += -= *= /= %=
    value: Expr = None
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass
class Block(Stmt):
    stmts: list = field(default_factory=list)
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Block = None
    otherwise: Block = None
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass
class For(Stmt):
    """C-style for loop. ``init`` and ``step`` are statements (or None)."""

    init: Stmt = None
    cond: Expr = None
    step: Stmt = None
    body: Block = None
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Block = None
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass
class Return(Stmt):
    value: Expr = None
    span: Span = field(default=DUMMY_SPAN, compare=False)


# ---------------------------------------------------------------------
# Pass-introduced nodes (Section III of the paper)
# ---------------------------------------------------------------------


@dataclass
class WarpShuffle(Expr):
    """``__shfl_down(value, offset)`` / ``__shfl_up`` — produced by the
    warp-shuffle detection pass (Section III-C); never written by users."""

    value: Expr = None
    offset: Expr = None
    direction: str = "down"  # down | up
    width: int = 32
    span: Span = field(default=DUMMY_SPAN, compare=False)
    ty: Type = field(default=None, compare=False)


@dataclass
class AtomicUpdate(Stmt):
    """``atomicAdd(&target, value)`` — produced by the shared-memory
    atomic-qualifier pass (Section III-B) and by the Map global-atomic
    pass (Section III-A)."""

    target: Expr = None  # Ident or Index lvalue
    op: str = "add"  # add | sub | max | min
    value: Expr = None
    space: str = "shared"  # shared | global
    scope: str = "device"  # device | block (Pascal scoped atomics)
    span: Span = field(default=DUMMY_SPAN, compare=False)


# ---------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    declared_type: Type = None
    span: Span = field(default=DUMMY_SPAN, compare=False)


@dataclass
class Codelet(Node):
    """One ``__codelet`` definition.

    ``kind`` is filled in by semantic analysis with one of
    ``"atomic_autonomous"``, ``"compound"``, or ``"cooperative"``
    (the classification of Section II-B-1).
    """

    name: str
    return_type: Type = None
    params: list = field(default_factory=list)
    body: Block = None
    coop: bool = False
    tag: str = None
    span: Span = field(default=DUMMY_SPAN, compare=False)
    kind: str = field(default=None, compare=False)

    def display_name(self) -> str:
        if self.tag:
            return f"{self.name}@{self.tag}"
        return self.name


@dataclass
class Program(Node):
    codelets: list = field(default_factory=list)
    span: Span = field(default=DUMMY_SPAN, compare=False)

    def spectrums(self) -> dict:
        """Group codelets by spectrum name, preserving source order."""
        grouped = {}
        for codelet in self.codelets:
            grouped.setdefault(codelet.name, []).append(codelet)
        return grouped


# ---------------------------------------------------------------------
# Traversal
# ---------------------------------------------------------------------


class NodeVisitor:
    """Read-only visitor with ``visit_<ClassName>`` dispatch."""

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node):
        for _, child in node.children():
            self.visit(child)
        return None


class NodeTransformer(NodeVisitor):
    """Rebuild-style transformer.

    ``visit`` must return the (possibly new) node. For statements inside a
    :class:`Block`, returning ``None`` removes the statement and returning
    a list splices several statements in its place.
    """

    def generic_visit(self, node: Node):
        for f in fields(node):
            if f.name == "span":
                continue
            value = getattr(node, f.name)
            if isinstance(value, Node):
                setattr(node, f.name, self.visit(value))
            elif isinstance(value, list):
                new_items = []
                for item in value:
                    if not isinstance(item, Node):
                        new_items.append(item)
                        continue
                    result = self.visit(item)
                    if result is None:
                        continue
                    if isinstance(result, list):
                        new_items.extend(result)
                    else:
                        new_items.append(result)
                setattr(node, f.name, new_items)
        return node


def walk(node: Node):
    """Yield ``node`` and all descendants in pre-order."""
    yield node
    for _, child in node.children():
        yield from walk(child)


def find_all(node: Node, node_type) -> list:
    """All descendants (including ``node``) of the given class."""
    return [n for n in walk(node) if isinstance(n, node_type)]


def dump(node: Node, indent: int = 0) -> str:
    """Readable multi-line dump used in tests and debugging."""
    pad = "  " * indent
    name = type(node).__name__
    scalars = []
    for f in fields(node):
        if f.name in ("span", "ty"):
            continue
        value = getattr(node, f.name)
        if isinstance(value, (str, int, float, bool, Type)) or value is None:
            scalars.append(f"{f.name}={value!r}")
    lines = [f"{pad}{name}({', '.join(scalars)})"]
    for label, child in node.children():
        lines.append(f"{pad}  .{label}:")
        lines.append(dump(child, indent + 2))
    return "\n".join(lines)
