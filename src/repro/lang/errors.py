"""Error and diagnostic types shared by every compiler stage."""

from __future__ import annotations

from .source import Span


class TangramError(Exception):
    """Base class for all errors raised by the DSL toolchain.

    Carries an optional :class:`~repro.lang.source.Span` so callers can
    render the offending source location.
    """

    stage = "compile"

    def __init__(self, message: str, span: Span = None):
        self.message = message
        self.span = span
        super().__init__(self._format())

    def _format(self) -> str:
        if self.span is None or self.span.source is None:
            return f"{self.stage} error: {self.message}"
        location = self.span.describe()
        snippet = self.span.caret_snippet()
        return f"{self.stage} error: {location}: {self.message}\n{snippet}"


class LexError(TangramError):
    stage = "lex"


class ParseError(TangramError):
    stage = "parse"


class SemanticError(TangramError):
    stage = "semantic"


class TypeMismatchError(SemanticError):
    """A value was used where an incompatible type was expected."""


class UnknownSymbolError(SemanticError):
    """An identifier was referenced without a visible declaration."""


class TransformError(TangramError):
    """An AST transformation pass could not apply or verify a rewrite."""

    stage = "transform"


class LoweringError(TangramError):
    """Lowering of a synthesized codelet composition to VIR failed."""

    stage = "lower"


class SynthesisError(TangramError):
    """Variant enumeration / composition produced an invalid plan."""

    stage = "synthesis"
