"""Hand-written lexer for the Tangram-like DSL.

The lexer is a single forward scan producing a list of
:class:`~repro.lang.tokens.Token`. It understands C/C++-style line and
block comments, decimal/hex integer literals (with optional ``u``/``U``
suffix), float literals (with optional ``f``/``F`` suffix), identifiers,
DSL keywords, and the multi-character operators used by the language.
"""

from __future__ import annotations

from .errors import LexError
from .source import SourceFile, Span
from .tokens import KEYWORDS, Token, TokenKind

# Multi-character operators, longest first so maximal munch works by
# simple ordered prefix matching.
_OPERATORS = [
    ("<<=", TokenKind.SHL_ASSIGN),
    (">>=", TokenKind.SHR_ASSIGN),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (",", TokenKind.COMMA),
    (";", TokenKind.SEMICOLON),
    (".", TokenKind.DOT),
    ("?", TokenKind.QUESTION),
    (":", TokenKind.COLON),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("!", TokenKind.NOT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
]


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char == "_"


class Lexer:
    """Scans one :class:`SourceFile` into tokens."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0

    def tokenize(self) -> list:
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internals ---------------------------------------------------

    def _span(self, start: int) -> Span:
        return Span(start, self.pos, self.source)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char.isspace():
                self.pos += 1
            elif char == "/" and self._peek(1) == "/":
                newline = self.text.find("\n", self.pos)
                self.pos = len(self.text) if newline == -1 else newline
            elif char == "/" and self._peek(1) == "*":
                close = self.text.find("*/", self.pos + 2)
                if close == -1:
                    raise LexError(
                        "unterminated block comment",
                        Span(self.pos, self.pos + 2, self.source),
                    )
                self.pos = close + 2
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        start = self.pos
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self._span(start))

        char = self.text[self.pos]
        if char.isdigit():
            return self._lex_number(start)
        if _is_ident_start(char):
            return self._lex_ident(start)
        for literal, kind in _OPERATORS:
            if self.text.startswith(literal, self.pos):
                self.pos += len(literal)
                return Token(kind, literal, self._span(start))
        raise LexError(
            f"unexpected character {char!r}",
            Span(start, start + 1, self.source),
        )

    def _lex_ident(self, start: int) -> Token:
        while self.pos < len(self.text) and _is_ident_char(self.text[self.pos]):
            self.pos += 1
        text = self.text[start:self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, self._span(start))

    def _lex_number(self, start: int) -> Token:
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self.pos += 2
            digits_start = self.pos
            while self.pos < len(self.text) and self.text[self.pos] in "0123456789abcdefABCDEF":
                self.pos += 1
            if self.pos == digits_start:
                raise LexError(
                    "hex literal with no digits", Span(start, self.pos, self.source)
                )
            if self._peek() in ("u", "U"):
                self.pos += 1
            return Token(TokenKind.INT_LITERAL, self.text[start:self.pos], self._span(start))

        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1

        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self.pos += 1
            if self._peek() in "+-":
                self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1

        if is_float:
            if self._peek() in ("f", "F"):
                self.pos += 1
            return Token(
                TokenKind.FLOAT_LITERAL, self.text[start:self.pos], self._span(start)
            )
        if self._peek() in ("f", "F"):
            # e.g. `1f` — treat as a float literal for convenience
            self.pos += 1
            return Token(
                TokenKind.FLOAT_LITERAL, self.text[start:self.pos], self._span(start)
            )
        if self._peek() in ("u", "U"):
            self.pos += 1
        if self.pos < len(self.text) and _is_ident_start(self.text[self.pos]):
            raise LexError(
                f"invalid suffix on numeric literal: {self.text[start:self.pos + 1]!r}",
                Span(start, self.pos + 1, self.source),
            )
        return Token(TokenKind.INT_LITERAL, self.text[start:self.pos], self._span(start))


def tokenize(text: str, name: str = "<dsl>") -> list:
    """Convenience wrapper: lex ``text`` into a token list (with EOF)."""
    return Lexer(SourceFile(text, name)).tokenize()
