"""Source text handling for the Tangram-like DSL.

A :class:`SourceFile` owns the raw text of one DSL translation unit and
knows how to map byte offsets back to human-readable line/column pairs.
Every token and AST node carries a :class:`Span` pointing back into its
source file so that diagnostics from any compiler stage (lexer, parser,
semantic analysis, AST passes) can show the offending source line.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


class SourceFile:
    """Immutable wrapper around the text of one DSL source file."""

    def __init__(self, text: str, name: str = "<dsl>"):
        self.text = text
        self.name = name
        self._line_starts = self._compute_line_starts(text)

    @staticmethod
    def _compute_line_starts(text: str) -> list:
        starts = [0]
        for index, char in enumerate(text):
            if char == "\n":
                starts.append(index + 1)
        return starts

    def line_col(self, offset: int) -> tuple:
        """Return the 1-based ``(line, column)`` for a byte offset."""
        if offset < 0:
            raise ValueError(f"negative source offset: {offset}")
        offset = min(offset, len(self.text))
        line_index = bisect.bisect_right(self._line_starts, offset) - 1
        column = offset - self._line_starts[line_index]
        return line_index + 1, column + 1

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line number, without the newline."""
        if line < 1 or line > len(self._line_starts):
            raise ValueError(f"line {line} out of range for {self.name}")
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]

    def __repr__(self) -> str:
        return f"SourceFile(name={self.name!r}, {len(self.text)} chars)"


@dataclass(frozen=True)
class Span:
    """Half-open byte range ``[start, end)`` within a source file."""

    start: int
    end: int
    source: SourceFile = field(repr=False, compare=False, default=None)

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        return Span(
            min(self.start, other.start),
            max(self.end, other.end),
            self.source or other.source,
        )

    @property
    def text(self) -> str:
        if self.source is None:
            return ""
        return self.source.text[self.start:self.end]

    def describe(self) -> str:
        """Format as ``name:line:col`` when a source file is attached."""
        if self.source is None:
            return f"<offset {self.start}>"
        line, col = self.source.line_col(self.start)
        return f"{self.source.name}:{line}:{col}"

    def caret_snippet(self) -> str:
        """Render the source line with a caret column marker underneath."""
        if self.source is None:
            return ""
        line, col = self.source.line_col(self.start)
        text = self.source.line_text(line)
        width = max(1, min(self.end, len(self.source.text)) - self.start)
        width = min(width, max(1, len(text) - (col - 1)))
        return f"{text}\n{' ' * (col - 1)}{'^' * width}"


DUMMY_SPAN = Span(0, 0, None)
