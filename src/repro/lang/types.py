"""Type system for the Tangram-like DSL.

The language has a deliberately small set of types:

* scalar types: ``int``, ``unsigned``, ``float``, ``double``, ``bool``,
  ``void``;
* ``Array<rank, T>`` — the DSL's read-only data container with ``Size()``
  and ``Stride()`` member functions (Figure 1 of the paper);
* raw buffers — C-style local arrays declared with ``__shared`` (or not);
* ``Sequence`` — an access-pattern generator used by ``partition``;
* ``Map`` — the result of applying a spectrum over a partition;
* ``Vector`` — the handle to the SIMD thread group (Figure 2).

Types are immutable value objects; use ``==`` for compatibility checks
and the helpers at the bottom for arithmetic promotion.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for all DSL types."""

    def is_scalar(self) -> bool:
        return isinstance(self, ScalarType)

    def is_numeric(self) -> bool:
        return isinstance(self, ScalarType) and self.kind in _NUMERIC_KINDS

    def is_integral(self) -> bool:
        return isinstance(self, ScalarType) and self.kind in ("int", "unsigned", "bool")


_NUMERIC_KINDS = ("int", "unsigned", "float", "double")
_SCALAR_KINDS = _NUMERIC_KINDS + ("bool", "void")


@dataclass(frozen=True)
class ScalarType(Type):
    kind: str

    def __post_init__(self):
        if self.kind not in _SCALAR_KINDS:
            raise ValueError(f"unknown scalar kind: {self.kind!r}")

    def __str__(self) -> str:
        return self.kind


INT = ScalarType("int")
UNSIGNED = ScalarType("unsigned")
FLOAT = ScalarType("float")
DOUBLE = ScalarType("double")
BOOL = ScalarType("bool")
VOID = ScalarType("void")

SCALAR_BY_NAME = {
    "int": INT,
    "unsigned": UNSIGNED,
    "float": FLOAT,
    "double": DOUBLE,
    "bool": BOOL,
    "void": VOID,
}


@dataclass(frozen=True)
class ContainerType(Type):
    """The DSL ``Array<rank, T>`` container (a kernel input)."""

    rank: int
    element: ScalarType
    const: bool = True

    def __str__(self) -> str:
        prefix = "const " if self.const else ""
        return f"{prefix}Array<{self.rank},{self.element}>"


@dataclass(frozen=True)
class BufferType(Type):
    """A raw (possibly ``__shared``) local array of scalars."""

    element: ScalarType

    def __str__(self) -> str:
        return f"{self.element}[]"


@dataclass(frozen=True)
class SequenceType(Type):
    def __str__(self) -> str:
        return "Sequence"


@dataclass(frozen=True)
class MapType(Type):
    """Result of ``Map(f, partition(...))`` — a container of partials."""

    element: ScalarType

    def __str__(self) -> str:
        return f"Map<{self.element}>"


@dataclass(frozen=True)
class PartitionType(Type):
    """Result of ``partition(container, n, start, inc, end)``."""

    element: ScalarType

    def __str__(self) -> str:
        return f"Partition<{self.element}>"


@dataclass(frozen=True)
class VectorType(Type):
    def __str__(self) -> str:
        return "Vector"


SEQUENCE = SequenceType()
VECTOR = VectorType()


# -- promotion rules ---------------------------------------------------

_RANKING = {"bool": 0, "int": 1, "unsigned": 2, "float": 3, "double": 4}


def promote(left: Type, right: Type) -> ScalarType:
    """Usual-arithmetic-conversion result for two scalar operands.

    Raises :class:`TypeError` when either operand is not scalar; callers
    in semantic analysis convert this to a spanned diagnostic.
    """
    if not isinstance(left, ScalarType) or not isinstance(right, ScalarType):
        raise TypeError(f"cannot promote non-scalar types {left} and {right}")
    if left.kind == "void" or right.kind == "void":
        raise TypeError("void has no value")
    winner = max(left.kind, right.kind, key=_RANKING.__getitem__)
    if winner == "bool":
        # bool op bool computes in int, like C
        return INT
    return SCALAR_BY_NAME[winner]


def assignable(target: Type, value: Type) -> bool:
    """Whether ``value`` may be stored into a location of type ``target``.

    Scalars convert freely among numeric kinds (C-like implicit
    conversions); everything else requires exact type equality.
    """
    if isinstance(target, ScalarType) and isinstance(value, ScalarType):
        if target.kind == "void" or value.kind == "void":
            return False
        return True
    return target == value
