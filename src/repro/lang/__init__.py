"""Tangram-like DSL frontend: lexer, parser, AST, semantic analysis.

Typical use::

    from repro.lang import analyze_source

    analyzed = analyze_source(dsl_text)
    for info in analyzed.codelets:
        print(info.display_name, info.kind)
"""

from . import ast
from .errors import (
    LexError,
    LoweringError,
    ParseError,
    SemanticError,
    SynthesisError,
    TangramError,
    TransformError,
    TypeMismatchError,
    UnknownSymbolError,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse_expression, parse_program
from .semantic import (
    AnalyzedProgram,
    CodeletInfo,
    MapInfo,
    PARTITION_INDEX_NAME,
    analyze,
    analyze_source,
)
from .source import SourceFile, Span
from .symbols import Scope, Symbol
from .tokens import Token, TokenKind

__all__ = [
    "AnalyzedProgram",
    "CodeletInfo",
    "Lexer",
    "LexError",
    "LoweringError",
    "MapInfo",
    "PARTITION_INDEX_NAME",
    "ParseError",
    "Parser",
    "Scope",
    "SemanticError",
    "SourceFile",
    "Span",
    "Symbol",
    "SynthesisError",
    "TangramError",
    "Token",
    "TokenKind",
    "TransformError",
    "TypeMismatchError",
    "UnknownSymbolError",
    "analyze",
    "analyze_source",
    "ast",
    "parse_expression",
    "parse_program",
    "tokenize",
]
