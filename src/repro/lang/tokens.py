"""Token definitions for the Tangram-like DSL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .source import Span


class TokenKind(enum.Enum):
    # literals and identifiers
    IDENT = "identifier"
    INT_LITERAL = "integer literal"
    FLOAT_LITERAL = "float literal"

    # keywords
    KW_CODELET = "__codelet"
    KW_COOP = "__coop"
    KW_TAG = "__tag"
    KW_SHARED = "__shared"
    KW_TUNABLE = "__tunable"
    KW_ATOMIC_ADD = "_atomicAdd"
    KW_ATOMIC_SUB = "_atomicSub"
    KW_ATOMIC_MAX = "_atomicMax"
    KW_ATOMIC_MIN = "_atomicMin"
    KW_CONST = "const"
    KW_INT = "int"
    KW_UNSIGNED = "unsigned"
    KW_FLOAT = "float"
    KW_DOUBLE = "double"
    KW_BOOL = "bool"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_RETURN = "return"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_ARRAY = "Array"
    KW_SEQUENCE = "Sequence"
    KW_MAP = "Map"
    KW_VECTOR = "Vector"

    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    DOT = "."
    QUESTION = "?"
    COLON = ":"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="
    AND_AND = "&&"
    OR_OR = "||"
    NOT = "!"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    SHL = "<<"
    SHR = ">>"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"
    EOF = "<eof>"


KEYWORDS = {
    "__codelet": TokenKind.KW_CODELET,
    "__coop": TokenKind.KW_COOP,
    "__tag": TokenKind.KW_TAG,
    "__shared": TokenKind.KW_SHARED,
    "__tunable": TokenKind.KW_TUNABLE,
    "_atomicAdd": TokenKind.KW_ATOMIC_ADD,
    "_atomicSub": TokenKind.KW_ATOMIC_SUB,
    "_atomicMax": TokenKind.KW_ATOMIC_MAX,
    "_atomicMin": TokenKind.KW_ATOMIC_MIN,
    "const": TokenKind.KW_CONST,
    "int": TokenKind.KW_INT,
    "unsigned": TokenKind.KW_UNSIGNED,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_DOUBLE,
    "bool": TokenKind.KW_BOOL,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "return": TokenKind.KW_RETURN,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "Array": TokenKind.KW_ARRAY,
    "Sequence": TokenKind.KW_SEQUENCE,
    "Map": TokenKind.KW_MAP,
    "Vector": TokenKind.KW_VECTOR,
}

ATOMIC_QUALIFIER_KINDS = {
    TokenKind.KW_ATOMIC_ADD: "add",
    TokenKind.KW_ATOMIC_SUB: "sub",
    TokenKind.KW_ATOMIC_MAX: "max",
    TokenKind.KW_ATOMIC_MIN: "min",
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"
