"""Lexically scoped symbol tables used by semantic analysis."""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import Node
from .errors import SemanticError, UnknownSymbolError
from .source import Span
from .types import Type


@dataclass
class Symbol:
    """One declared name.

    ``kind`` is one of ``"param"``, ``"local"``, ``"tunable"``,
    ``"shared"``, ``"vector"``, ``"sequence"``, ``"map"``.
    """

    name: str
    ty: Type
    kind: str
    decl: Node = None
    atomic: str = None  # shared-memory atomic qualifier, if any
    dims: list = field(default_factory=list)

    @property
    def is_shared(self) -> bool:
        return self.kind == "shared"

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


class Scope:
    """One lexical scope; chains to its parent for lookups."""

    def __init__(self, parent: "Scope" = None):
        self.parent = parent
        self._symbols = {}

    def declare(self, symbol: Symbol, span: Span = None) -> Symbol:
        if symbol.name in self._symbols:
            raise SemanticError(
                f"redeclaration of {symbol.name!r} in the same scope", span
            )
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str):
        scope = self
        while scope is not None:
            symbol = scope._symbols.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def resolve(self, name: str, span: Span = None) -> Symbol:
        symbol = self.lookup(name)
        if symbol is None:
            raise UnknownSymbolError(f"use of undeclared identifier {name!r}", span)
        return symbol

    def local_names(self) -> list:
        return list(self._symbols)
