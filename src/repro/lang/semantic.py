"""Semantic analysis for the Tangram-like DSL.

Responsibilities:

* build lexically scoped symbol tables and resolve every identifier;
* type every expression (annotating ``expr.ty`` in place);
* validate the DSL-specific rules — atomic qualifiers only on
  ``__shared`` declarations, ``__tunable`` only on uninitialised integer
  scalars, ``Map``/``partition``/``Sequence``/``Vector`` constructor
  shapes, spectrum call signatures;
* classify each codelet as *atomic autonomous*, *compound*, or
  *cooperative* (Section II-B-1 of the paper);
* record the metadata later passes need: the ``Vector`` handle of a
  cooperative codelet, shared declarations with their atomic qualifiers,
  ``Map`` declarations with their atomic-API calls (Section III-A), and
  tunable parameters.

The entry point is :func:`analyze`, returning an :class:`AnalyzedProgram`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .errors import SemanticError, TypeMismatchError
from .symbols import Scope, Symbol
from .types import (
    BOOL,
    BufferType,
    ContainerType,
    DOUBLE,
    FLOAT,
    INT,
    MapType,
    PartitionType,
    ScalarType,
    SequenceType,
    Type,
    UNSIGNED,
    VectorType,
    VOID,
    assignable,
    promote,
)

#: Implicit identifier bound to the partition index inside ``Sequence``
#: constructor expressions, e.g. ``Sequence start(i * tile);``.
PARTITION_INDEX_NAME = "i"

VECTOR_METHODS = {
    "Size": INT,
    "MaxSize": INT,
    "ThreadId": INT,
    "LaneId": INT,
    "VectorId": INT,
}

CONTAINER_METHODS = {
    "Size": UNSIGNED,
    "Stride": UNSIGNED,
}

MAP_ATOMIC_METHODS = {
    "atomicAdd": "add",
    "atomicSub": "sub",
    "atomicMax": "max",
    "atomicMin": "min",
}


@dataclass
class MapInfo:
    """Metadata for one ``Map(f, partition(...))`` declaration."""

    decl: ast.VarDecl
    spectrum: str
    partition: ast.Call
    symbol: Symbol
    atomic_op: str = None  # set when map.atomicAdd() etc. appears
    atomic_call: ast.ExprStmt = None


@dataclass
class CodeletInfo:
    """Semantic summary of one codelet, consumed by the AST passes."""

    codelet: ast.Codelet
    kind: str  # atomic_autonomous | compound | cooperative
    scope: Scope
    vector: Symbol = None
    shared: list = field(default_factory=list)  # shared Symbols
    tunables: list = field(default_factory=list)
    maps: list = field(default_factory=list)  # MapInfo
    sequences: dict = field(default_factory=dict)  # name -> VarDecl
    spectrum_calls: list = field(default_factory=list)  # ast.Call nodes

    @property
    def name(self) -> str:
        return self.codelet.name

    @property
    def display_name(self) -> str:
        return self.codelet.display_name()


@dataclass
class AnalyzedProgram:
    program: ast.Program
    codelets: list = field(default_factory=list)  # CodeletInfo, source order

    def spectrum(self, name: str) -> list:
        infos = [info for info in self.codelets if info.name == name]
        if not infos:
            raise SemanticError(f"unknown spectrum {name!r}")
        return infos

    def spectrum_names(self) -> list:
        seen = []
        for info in self.codelets:
            if info.name not in seen:
                seen.append(info.name)
        return seen

    def find(self, name: str, tag: str) -> CodeletInfo:
        """Codelet of spectrum ``name`` with the given ``__tag``."""
        for info in self.spectrum(name):
            if info.codelet.tag == tag:
                return info
        raise SemanticError(f"spectrum {name!r} has no codelet tagged {tag!r}")


def analyze(program: ast.Program) -> AnalyzedProgram:
    """Run full semantic analysis over a parsed program."""
    _check_spectrum_signatures(program)
    analyzer = _Analyzer(program)
    infos = [analyzer.analyze_codelet(codelet) for codelet in program.codelets]
    return AnalyzedProgram(program=program, codelets=infos)


def _check_spectrum_signatures(program: ast.Program) -> None:
    """All codelets of one spectrum must share a call signature."""
    for name, codelets in program.spectrums().items():
        first = codelets[0]
        for other in codelets[1:]:
            if other.return_type != first.return_type:
                raise SemanticError(
                    f"codelets of spectrum {name!r} disagree on return type "
                    f"({other.return_type} vs {first.return_type})",
                    other.span,
                )
            if len(other.params) != len(first.params) or any(
                a.declared_type != b.declared_type
                for a, b in zip(other.params, first.params)
            ):
                raise SemanticError(
                    f"codelets of spectrum {name!r} disagree on parameters",
                    other.span,
                )
        tags = [c.tag for c in codelets if c.tag is not None]
        if len(tags) != len(set(tags)):
            raise SemanticError(
                f"spectrum {name!r} has duplicate __tag names", first.span
            )


class _Analyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.spectrums = program.spectrums()
        self.info = None  # CodeletInfo under construction

    # -- codelet level -------------------------------------------------

    def analyze_codelet(self, codelet: ast.Codelet) -> CodeletInfo:
        scope = Scope()
        self.info = CodeletInfo(codelet=codelet, kind=None, scope=scope)
        if not codelet.params:
            raise SemanticError(
                f"codelet {codelet.name!r} must take at least one parameter",
                codelet.span,
            )
        first = codelet.params[0]
        if not isinstance(first.declared_type, ContainerType):
            raise SemanticError(
                f"codelet {codelet.name!r}: first parameter must be an "
                f"Array<rank,T> container",
                first.span,
            )
        for param in codelet.params:
            kind = "param"
            scope.declare(
                Symbol(param.name, param.declared_type, kind, decl=param),
                param.span,
            )
        for extra in codelet.params[1:]:
            if not isinstance(extra.declared_type, ScalarType):
                raise SemanticError(
                    "extra codelet parameters must be scalars", extra.span
                )

        self._check_block(codelet.body, Scope(scope))
        self._classify(codelet)
        if codelet.return_type != VOID and not self._has_return(codelet.body):
            raise SemanticError(
                f"codelet {codelet.name!r} returns {codelet.return_type} but has "
                f"no return statement",
                codelet.span,
            )
        info = self.info
        self.info = None
        return info

    def _classify(self, codelet: ast.Codelet) -> None:
        is_coop = codelet.coop or self.info.vector is not None
        is_compound = bool(self.info.maps)
        if is_coop and is_compound:
            raise SemanticError(
                f"codelet {codelet.name!r} cannot be both cooperative (Vector) "
                f"and compound (Map)",
                codelet.span,
            )
        if is_coop:
            if self.info.vector is None:
                raise SemanticError(
                    f"__coop codelet {codelet.name!r} must declare a Vector",
                    codelet.span,
                )
            self.info.kind = "cooperative"
        elif is_compound:
            self.info.kind = "compound"
        else:
            self.info.kind = "atomic_autonomous"
        codelet.kind = self.info.kind

    @staticmethod
    def _has_return(block: ast.Block) -> bool:
        return any(isinstance(node, ast.Return) for node in ast.walk(block))

    # -- statements ------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: Scope) -> None:
        for stmt in block.stmts:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr_stmt(stmt, scope)
        elif isinstance(stmt, ast.If):
            cond_ty = self._type_expr(stmt.cond, scope)
            self._require_scalar(cond_ty, stmt.cond, "if condition")
            self._check_block(stmt.then, Scope(scope))
            if stmt.otherwise is not None:
                self._check_block(stmt.otherwise, Scope(scope))
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                cond_ty = self._type_expr(stmt.cond, inner)
                self._require_scalar(cond_ty, stmt.cond, "for condition")
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._check_block(stmt.body, Scope(inner))
        elif isinstance(stmt, ast.While):
            cond_ty = self._type_expr(stmt.cond, scope)
            self._require_scalar(cond_ty, stmt.cond, "while condition")
            self._check_block(stmt.body, Scope(scope))
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, Scope(scope))
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}", stmt.span)

    def _check_return(self, stmt: ast.Return, scope: Scope) -> None:
        expected = self.info.codelet.return_type
        if stmt.value is None:
            if expected != VOID:
                raise TypeMismatchError(
                    f"return without a value in codelet returning {expected}",
                    stmt.span,
                )
            return
        actual = self._type_expr(stmt.value, scope)
        if not assignable(expected, actual):
            raise TypeMismatchError(
                f"cannot return {actual} from codelet returning {expected}",
                stmt.span,
            )

    def _check_expr_stmt(self, stmt: ast.ExprStmt, scope: Scope) -> None:
        expr = stmt.expr
        # `map.atomicAdd();` — the Map atomic API of Section III-A.
        if (
            isinstance(expr, ast.MethodCall)
            and isinstance(expr.obj, ast.Ident)
            and expr.method in MAP_ATOMIC_METHODS
        ):
            symbol = scope.lookup(expr.obj.name)
            if symbol is not None and isinstance(symbol.ty, MapType):
                self._record_map_atomic(expr, stmt, symbol, scope)
                return
        self._type_expr(expr, scope)

    def _record_map_atomic(self, expr, stmt, symbol, scope) -> None:
        if expr.args:
            raise SemanticError(
                f"Map.{expr.method}() takes no arguments", expr.span
            )
        map_info = self._map_info_for(symbol)
        if map_info.atomic_op is not None:
            raise SemanticError(
                f"Map {symbol.name!r} already has an atomic API call", expr.span
            )
        map_info.atomic_op = MAP_ATOMIC_METHODS[expr.method]
        map_info.atomic_call = stmt
        expr.obj.ty = symbol.ty
        expr.ty = VOID

    def _map_info_for(self, symbol: Symbol) -> MapInfo:
        for map_info in self.info.maps:
            if map_info.symbol is symbol:
                return map_info
        raise SemanticError(f"no Map metadata for symbol {symbol.name!r}")

    def _check_assign(self, stmt: ast.Assign, scope: Scope) -> None:
        target_ty = self._type_expr(stmt.target, scope, lvalue=True)
        value_ty = self._type_expr(stmt.value, scope)
        if isinstance(stmt.target, ast.Ident):
            symbol = scope.resolve(stmt.target.name, stmt.target.span)
            if symbol.kind == "param":
                raise SemanticError(
                    f"cannot assign to parameter {symbol.name!r}", stmt.span
                )
            if symbol.kind == "tunable":
                raise SemanticError(
                    f"cannot assign to __tunable {symbol.name!r}", stmt.span
                )
            if isinstance(symbol.ty, (VectorType, SequenceType, MapType)):
                raise SemanticError(
                    f"cannot assign to {symbol.ty} object {symbol.name!r}",
                    stmt.span,
                )
        if stmt.op != "=" and not (
            target_ty.is_numeric() and value_ty.is_numeric()
        ):
            raise TypeMismatchError(
                f"compound assignment {stmt.op!r} requires numeric operands "
                f"({target_ty} {stmt.op} {value_ty})",
                stmt.span,
            )
        if not assignable(target_ty, value_ty):
            raise TypeMismatchError(
                f"cannot assign {value_ty} to {target_ty}", stmt.span
            )

    def _check_var_decl(self, decl: ast.VarDecl, scope: Scope) -> None:
        if decl.atomic is not None and not decl.shared:
            raise SemanticError(
                f"_atomic{decl.atomic.capitalize()} qualifier requires __shared "
                f"(declaration of {decl.name!r})",
                decl.span,
            )
        if isinstance(decl.declared_type, VectorType):
            self._declare_vector(decl, scope)
            return
        if isinstance(decl.declared_type, SequenceType):
            self._declare_sequence(decl, scope)
            return
        if decl.declared_type is None and len(decl.ctor_args) == 2:
            self._declare_map(decl, scope)
            return
        self._declare_scalar_or_array(decl, scope)

    def _declare_vector(self, decl: ast.VarDecl, scope: Scope) -> None:
        if decl.ctor_args:
            raise SemanticError("Vector declaration takes no arguments", decl.span)
        if decl.shared or decl.tunable:
            raise SemanticError(
                "Vector declaration cannot carry memory qualifiers", decl.span
            )
        if self.info.vector is not None:
            raise SemanticError(
                "a codelet may declare at most one Vector", decl.span
            )
        symbol = scope.declare(
            Symbol(decl.name, VectorType(), "vector", decl=decl), decl.span
        )
        self.info.vector = symbol

    def _declare_sequence(self, decl: ast.VarDecl, scope: Scope) -> None:
        if len(decl.ctor_args) != 1:
            raise SemanticError(
                "Sequence declaration takes exactly one expression "
                f"(in terms of the partition index {PARTITION_INDEX_NAME!r})",
                decl.span,
            )
        # Type the generator expression with the partition index in scope.
        seq_scope = Scope(scope)
        seq_scope.declare(Symbol(PARTITION_INDEX_NAME, UNSIGNED, "local"))
        expr_ty = self._type_expr(decl.ctor_args[0], seq_scope)
        if not expr_ty.is_numeric():
            raise TypeMismatchError(
                f"Sequence expression must be numeric, got {expr_ty}",
                decl.ctor_args[0].span,
            )
        scope.declare(
            Symbol(decl.name, SequenceType(), "sequence", decl=decl), decl.span
        )
        self.info.sequences[decl.name] = decl

    def _declare_map(self, decl: ast.VarDecl, scope: Scope) -> None:
        func_arg, part_arg = decl.ctor_args
        if not isinstance(func_arg, ast.Ident):
            raise SemanticError(
                "first Map argument must name a spectrum", func_arg.span
            )
        spectrum_name = func_arg.name
        if spectrum_name not in self.spectrums:
            raise SemanticError(
                f"Map references unknown spectrum {spectrum_name!r}", func_arg.span
            )
        if not isinstance(part_arg, ast.Call) or part_arg.name != "partition":
            raise SemanticError(
                "second Map argument must be a partition(...) call", part_arg.span
            )
        partition_ty = self._type_partition(part_arg, scope)
        element = self.spectrums[spectrum_name][0].return_type
        map_ty = MapType(element=element)
        func_arg.ty = map_ty  # the spectrum reference itself
        symbol = scope.declare(
            Symbol(decl.name, map_ty, "map", decl=decl), decl.span
        )
        self.info.maps.append(
            MapInfo(decl=decl, spectrum=spectrum_name, partition=part_arg, symbol=symbol)
        )
        del partition_ty  # typing happens for its side effects on args

    def _declare_scalar_or_array(self, decl: ast.VarDecl, scope: Scope) -> None:
        declared = decl.declared_type
        if isinstance(declared, ContainerType):
            raise SemanticError(
                "Array<rank,T> containers may only appear as parameters",
                decl.span,
            )
        if not isinstance(declared, ScalarType) or declared == VOID:
            raise SemanticError(
                f"cannot declare a variable of type {declared}", decl.span
            )
        if decl.tunable:
            if not declared.is_integral():
                raise SemanticError(
                    "__tunable parameters must be integral", decl.span
                )
            if decl.init is not None or decl.dims:
                raise SemanticError(
                    "__tunable parameters take no initializer or dimensions",
                    decl.span,
                )
            symbol = scope.declare(
                Symbol(decl.name, declared, "tunable", decl=decl), decl.span
            )
            self.info.tunables.append(symbol)
            return

        for dim in decl.dims:
            dim_ty = self._type_expr(dim, scope)
            if not dim_ty.is_integral():
                raise TypeMismatchError(
                    f"array dimension must be integral, got {dim_ty}", dim.span
                )
        if decl.init is not None:
            if decl.dims:
                raise SemanticError(
                    "array declarations take no initializer", decl.span
                )
            init_ty = self._type_expr(decl.init, scope)
            if not assignable(declared, init_ty):
                raise TypeMismatchError(
                    f"cannot initialize {declared} with {init_ty}", decl.span
                )

        kind = "shared" if decl.shared else "local"
        ty = BufferType(declared) if decl.dims else declared
        symbol = scope.declare(
            Symbol(
                decl.name,
                ty,
                kind,
                decl=decl,
                atomic=decl.atomic,
                dims=list(decl.dims),
            ),
            decl.span,
        )
        if decl.shared:
            self.info.shared.append(symbol)

    # -- expressions ---------------------------------------------------

    def _require_scalar(self, ty: Type, expr: ast.Expr, what: str) -> None:
        if not isinstance(ty, ScalarType) or ty == VOID:
            raise TypeMismatchError(f"{what} must be scalar, got {ty}", expr.span)

    def _type_expr(self, expr: ast.Expr, scope: Scope, lvalue: bool = False) -> Type:
        ty = self._type_expr_inner(expr, scope, lvalue)
        expr.ty = ty
        return ty

    def _type_expr_inner(self, expr, scope, lvalue):
        if isinstance(expr, ast.IntLiteral):
            return UNSIGNED if expr.unsigned else INT
        if isinstance(expr, ast.FloatLiteral):
            return FLOAT if expr.single else DOUBLE
        if isinstance(expr, ast.BoolLiteral):
            return BOOL
        if isinstance(expr, ast.Ident):
            symbol = scope.resolve(expr.name, expr.span)
            return symbol.ty
        if isinstance(expr, ast.Unary):
            return self._type_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._type_binary(expr, scope)
        if isinstance(expr, ast.Ternary):
            return self._type_ternary(expr, scope)
        if isinstance(expr, ast.Index):
            return self._type_index(expr, scope, lvalue)
        if isinstance(expr, ast.MethodCall):
            return self._type_method_call(expr, scope)
        if isinstance(expr, ast.Call):
            return self._type_call(expr, scope)
        raise SemanticError(f"unhandled expression {type(expr).__name__}", expr.span)

    def _type_unary(self, expr: ast.Unary, scope: Scope) -> Type:
        operand = self._type_expr(expr.operand, scope)
        if expr.op == "-":
            if not operand.is_numeric():
                raise TypeMismatchError(
                    f"unary '-' requires a numeric operand, got {operand}", expr.span
                )
            return promote(operand, INT)
        if expr.op == "!":
            self._require_scalar(operand, expr.operand, "operand of '!'")
            return BOOL
        if expr.op == "~":
            if not operand.is_integral():
                raise TypeMismatchError(
                    f"unary '~' requires an integral operand, got {operand}",
                    expr.span,
                )
            return promote(operand, INT)
        raise SemanticError(f"unknown unary operator {expr.op!r}", expr.span)

    def _type_binary(self, expr: ast.Binary, scope: Scope) -> Type:
        lhs = self._type_expr(expr.lhs, scope)
        rhs = self._type_expr(expr.rhs, scope)
        op = expr.op
        if op in ("&&", "||"):
            self._require_scalar(lhs, expr.lhs, f"operand of {op!r}")
            self._require_scalar(rhs, expr.rhs, f"operand of {op!r}")
            return BOOL
        if op in ("==", "!=", "<", "<=", ">", ">="):
            try:
                promote(lhs, rhs)
            except TypeError as exc:
                raise TypeMismatchError(str(exc), expr.span) from None
            return BOOL
        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not (lhs.is_integral() and rhs.is_integral()):
                raise TypeMismatchError(
                    f"operator {op!r} requires integral operands "
                    f"({lhs} {op} {rhs})",
                    expr.span,
                )
            return promote(lhs, rhs)
        if op in ("+", "-", "*", "/"):
            if not (lhs.is_numeric() and rhs.is_numeric()):
                raise TypeMismatchError(
                    f"operator {op!r} requires numeric operands ({lhs} {op} {rhs})",
                    expr.span,
                )
            return promote(lhs, rhs)
        raise SemanticError(f"unknown binary operator {op!r}", expr.span)

    def _type_ternary(self, expr: ast.Ternary, scope: Scope) -> Type:
        cond = self._type_expr(expr.cond, scope)
        self._require_scalar(cond, expr.cond, "ternary condition")
        then = self._type_expr(expr.then, scope)
        otherwise = self._type_expr(expr.otherwise, scope)
        try:
            return promote(then, otherwise)
        except TypeError:
            if then == otherwise:
                return then
            raise TypeMismatchError(
                f"ternary branches have incompatible types {then} and {otherwise}",
                expr.span,
            ) from None

    def _type_index(self, expr: ast.Index, scope: Scope, lvalue: bool) -> Type:
        base = self._type_expr(expr.base, scope)
        index = self._type_expr(expr.index, scope)
        if not index.is_integral():
            raise TypeMismatchError(
                f"array index must be integral, got {index}", expr.index.span
            )
        if isinstance(base, ContainerType):
            if lvalue and base.const:
                raise SemanticError(
                    "cannot write to a const Array container", expr.span
                )
            return base.element
        if isinstance(base, (BufferType, MapType)):
            return base.element
        raise TypeMismatchError(f"type {base} is not indexable", expr.span)

    def _type_method_call(self, expr: ast.MethodCall, scope: Scope) -> Type:
        obj_ty = self._type_expr(expr.obj, scope)
        method = expr.method
        if isinstance(obj_ty, VectorType):
            result = VECTOR_METHODS.get(method)
            if result is None:
                raise SemanticError(
                    f"Vector has no member function {method!r}", expr.span
                )
            if expr.args:
                raise SemanticError(
                    f"Vector.{method}() takes no arguments", expr.span
                )
            return result
        if isinstance(obj_ty, ContainerType):
            result = CONTAINER_METHODS.get(method)
            if result is None:
                raise SemanticError(
                    f"Array has no member function {method!r}", expr.span
                )
            if expr.args:
                raise SemanticError(f"Array.{method}() takes no arguments", expr.span)
            return result
        if isinstance(obj_ty, MapType):
            if method == "Size":
                if expr.args:
                    raise SemanticError("Map.Size() takes no arguments", expr.span)
                return UNSIGNED
            if method in MAP_ATOMIC_METHODS:
                raise SemanticError(
                    f"Map.{method}() is a statement-level API, not an expression",
                    expr.span,
                )
            raise SemanticError(f"Map has no member function {method!r}", expr.span)
        raise TypeMismatchError(
            f"type {obj_ty} has no member functions", expr.span
        )

    def _type_call(self, expr: ast.Call, scope: Scope) -> Type:
        if expr.name in ("min", "max"):
            if len(expr.args) != 2:
                raise SemanticError(
                    f"{expr.name}() takes exactly two arguments", expr.span
                )
            left = self._type_expr(expr.args[0], scope)
            right = self._type_expr(expr.args[1], scope)
            if not (left.is_numeric() and right.is_numeric()):
                raise TypeMismatchError(
                    f"{expr.name}() requires numeric arguments", expr.span
                )
            return promote(left, right)
        if expr.name == "partition":
            return self._type_partition(expr, scope)
        if expr.name in self.spectrums:
            return self._type_spectrum_call(expr, scope)
        raise SemanticError(f"call to unknown function {expr.name!r}", expr.span)

    def _type_partition(self, expr: ast.Call, scope: Scope) -> Type:
        if len(expr.args) != 5:
            raise SemanticError(
                "partition(container, n, start, inc, end) takes 5 arguments",
                expr.span,
            )
        container_ty = self._type_expr(expr.args[0], scope)
        if not isinstance(container_ty, (ContainerType, MapType)):
            raise TypeMismatchError(
                f"partition() first argument must be a container, got {container_ty}",
                expr.args[0].span,
            )
        count_ty = self._type_expr(expr.args[1], scope)
        if not count_ty.is_integral():
            raise TypeMismatchError(
                f"partition() count must be integral, got {count_ty}",
                expr.args[1].span,
            )
        for seq_arg, label in zip(expr.args[2:], ("start", "inc", "end")):
            seq_ty = self._type_expr(seq_arg, scope)
            if not isinstance(seq_ty, SequenceType):
                raise TypeMismatchError(
                    f"partition() {label} argument must be a Sequence, got {seq_ty}",
                    seq_arg.span,
                )
        element = container_ty.element
        return PartitionType(element=element)

    def _type_spectrum_call(self, expr: ast.Call, scope: Scope) -> Type:
        codelets = self.spectrums[expr.name]
        signature = codelets[0]
        if len(expr.args) != len(signature.params):
            raise SemanticError(
                f"spectrum {expr.name!r} takes {len(signature.params)} argument(s), "
                f"got {len(expr.args)}",
                expr.span,
            )
        first_ty = self._type_expr(expr.args[0], scope)
        if not isinstance(first_ty, (ContainerType, MapType, PartitionType)):
            raise TypeMismatchError(
                f"spectrum call {expr.name!r} needs a container argument, "
                f"got {first_ty}",
                expr.args[0].span,
            )
        for arg, param in zip(expr.args[1:], signature.params[1:]):
            arg_ty = self._type_expr(arg, scope)
            if not assignable(param.declared_type, arg_ty):
                raise TypeMismatchError(
                    f"argument {param.name!r} of spectrum {expr.name!r} expects "
                    f"{param.declared_type}, got {arg_ty}",
                    arg.span,
                )
        self.info.spectrum_calls.append(expr)
        return signature.return_type


def analyze_source(text: str, name: str = "<dsl>") -> AnalyzedProgram:
    """Parse and analyze DSL source text in one step."""
    from .parser import parse_program

    return analyze(parse_program(text, name))
