"""Recursive-descent parser for the Tangram-like DSL.

The grammar covers exactly the language used in Figures 1 and 3 of the
paper: codelet definitions with qualifiers, ``Array``/``Sequence``/
``Map``/``Vector`` primitive declarations, C-style statements, and
C-style expressions with the usual precedence (ternary at the bottom,
postfix calls/indexing at the top).

Entry points: :func:`parse_program` (a translation unit of codelets) and
:func:`parse_expression` (used in tests).
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .lexer import Lexer
from .source import SourceFile, Span
from .tokens import ATOMIC_QUALIFIER_KINDS, Token, TokenKind
from .types import (
    ContainerType,
    SCALAR_BY_NAME,
    ScalarType,
    SEQUENCE,
    VECTOR,
)

# Binary operator precedence table: operator token -> (level, text).
# Higher level binds tighter. Ternary is handled separately below level 1.
_BINARY_LEVELS = [
    [(TokenKind.OR_OR, "||")],
    [(TokenKind.AND_AND, "&&")],
    [(TokenKind.PIPE, "|")],
    [(TokenKind.CARET, "^")],
    [(TokenKind.AMP, "&")],
    [(TokenKind.EQ, "=="), (TokenKind.NE, "!=")],
    [
        (TokenKind.LT, "<"),
        (TokenKind.LE, "<="),
        (TokenKind.GT, ">"),
        (TokenKind.GE, ">="),
    ],
    [(TokenKind.SHL, "<<"), (TokenKind.SHR, ">>")],
    [(TokenKind.PLUS, "+"), (TokenKind.MINUS, "-")],
    [(TokenKind.STAR, "*"), (TokenKind.SLASH, "/"), (TokenKind.PERCENT, "%")],
]

_ASSIGN_OPS = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
    TokenKind.PERCENT_ASSIGN: "%=",
    TokenKind.SHL_ASSIGN: "<<=",
    TokenKind.SHR_ASSIGN: ">>=",
}

_SCALAR_TYPE_TOKENS = {
    TokenKind.KW_INT: "int",
    TokenKind.KW_UNSIGNED: "unsigned",
    TokenKind.KW_FLOAT: "float",
    TokenKind.KW_DOUBLE: "double",
    TokenKind.KW_BOOL: "bool",
    TokenKind.KW_VOID: "void",
}

_DECL_START_TOKENS = set(_SCALAR_TYPE_TOKENS) | {
    TokenKind.KW_CONST,
    TokenKind.KW_ARRAY,
    TokenKind.KW_SEQUENCE,
    TokenKind.KW_MAP,
    TokenKind.KW_VECTOR,
    TokenKind.KW_SHARED,
    TokenKind.KW_TUNABLE,
}


class Parser:
    def __init__(self, tokens: list, source: SourceFile):
        self.tokens = tokens
        self.source = source
        self.pos = 0

    # -- token plumbing ----------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind: TokenKind) -> bool:
        return self.peek().kind is kind

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def accept(self, kind: TokenKind):
        if self.at(kind):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, context: str = "") -> Token:
        if self.at(kind):
            return self.advance()
        token = self.peek()
        where = f" in {context}" if context else ""
        raise ParseError(
            f"expected {kind.value!r}{where}, found {token.text or token.kind.value!r}",
            token.span,
        )

    # -- types ---------------------------------------------------------

    def parse_scalar_type(self) -> ScalarType:
        token = self.peek()
        name = _SCALAR_TYPE_TOKENS.get(token.kind)
        if name is None:
            raise ParseError(f"expected a scalar type, found {token.text!r}", token.span)
        self.advance()
        if name == "unsigned" and self.at(TokenKind.KW_INT):
            self.advance()  # `unsigned int` == `unsigned`
        return SCALAR_BY_NAME[name]

    def parse_container_type(self, const: bool) -> ContainerType:
        self.expect(TokenKind.KW_ARRAY)
        self.expect(TokenKind.LT, "Array type")
        rank_token = self.expect(TokenKind.INT_LITERAL, "Array rank")
        rank = int(rank_token.text.rstrip("uU"), 0)
        self.expect(TokenKind.COMMA, "Array type")
        element = self.parse_scalar_type()
        self.expect(TokenKind.GT, "Array type")
        return ContainerType(rank=rank, element=element, const=const)

    # -- program / codelets ---------------------------------------------

    def parse_program(self) -> ast.Program:
        codelets = []
        while not self.at(TokenKind.EOF):
            codelets.append(self.parse_codelet())
        span = (
            codelets[0].span.merge(codelets[-1].span)
            if codelets
            else Span(0, 0, self.source)
        )
        return ast.Program(codelets=codelets, span=span)

    def parse_codelet(self) -> ast.Codelet:
        start = self.expect(TokenKind.KW_CODELET, "codelet definition")
        coop = False
        tag = None
        while True:
            if self.accept(TokenKind.KW_COOP):
                coop = True
            elif self.at(TokenKind.KW_TAG):
                self.advance()
                self.expect(TokenKind.LPAREN, "__tag")
                tag = self.expect(TokenKind.IDENT, "__tag").text
                self.expect(TokenKind.RPAREN, "__tag")
            else:
                break
        return_type = self.parse_scalar_type()
        name = self.expect(TokenKind.IDENT, "codelet name").text
        self.expect(TokenKind.LPAREN, "codelet parameter list")
        params = []
        if not self.at(TokenKind.RPAREN):
            params.append(self.parse_param())
            while self.accept(TokenKind.COMMA):
                params.append(self.parse_param())
        self.expect(TokenKind.RPAREN, "codelet parameter list")
        body = self.parse_block()
        return ast.Codelet(
            name=name,
            return_type=return_type,
            params=params,
            body=body,
            coop=coop,
            tag=tag,
            span=start.span.merge(body.span),
        )

    def parse_param(self) -> ast.Param:
        start = self.peek()
        const = bool(self.accept(TokenKind.KW_CONST))
        if self.at(TokenKind.KW_ARRAY):
            declared = self.parse_container_type(const)
        else:
            declared = self.parse_scalar_type()
        name_token = self.expect(TokenKind.IDENT, "parameter name")
        return ast.Param(
            name=name_token.text,
            declared_type=declared,
            span=start.span.merge(name_token.span),
        )

    # -- statements ------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_brace = self.expect(TokenKind.LBRACE, "block")
        stmts = []
        while not self.at(TokenKind.RBRACE):
            if self.at(TokenKind.EOF):
                raise ParseError("unterminated block", open_brace.span)
            stmts.append(self.parse_statement())
        close_brace = self.advance()
        return ast.Block(stmts=stmts, span=open_brace.span.merge(close_brace.span))

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.kind is TokenKind.LBRACE:
            return self.parse_block()
        if token.kind is TokenKind.KW_IF:
            return self.parse_if()
        if token.kind is TokenKind.KW_FOR:
            return self.parse_for()
        if token.kind is TokenKind.KW_WHILE:
            return self.parse_while()
        if token.kind is TokenKind.KW_RETURN:
            return self.parse_return()
        if token.kind in _DECL_START_TOKENS or token.kind in ATOMIC_QUALIFIER_KINDS:
            stmt = self.parse_var_decl()
            self.expect(TokenKind.SEMICOLON, "declaration")
            return stmt
        stmt = self.parse_expr_or_assign()
        self.expect(TokenKind.SEMICOLON, "statement")
        return stmt

    def parse_if(self) -> ast.If:
        start = self.expect(TokenKind.KW_IF)
        self.expect(TokenKind.LPAREN, "if condition")
        cond = self.parse_expression()
        self.expect(TokenKind.RPAREN, "if condition")
        then = self._parse_statement_as_block()
        otherwise = None
        if self.accept(TokenKind.KW_ELSE):
            otherwise = self._parse_statement_as_block()
        end = otherwise or then
        return ast.If(
            cond=cond, then=then, otherwise=otherwise, span=start.span.merge(end.span)
        )

    def _parse_statement_as_block(self) -> ast.Block:
        """Wrap a single-statement body in a Block for uniform handling."""
        if self.at(TokenKind.LBRACE):
            return self.parse_block()
        stmt = self.parse_statement()
        return ast.Block(stmts=[stmt], span=stmt.span)

    def parse_for(self) -> ast.For:
        start = self.expect(TokenKind.KW_FOR)
        self.expect(TokenKind.LPAREN, "for header")
        init = None
        if not self.at(TokenKind.SEMICOLON):
            if self.peek().kind in _DECL_START_TOKENS:
                init = self.parse_var_decl()
            else:
                init = self.parse_expr_or_assign()
        self.expect(TokenKind.SEMICOLON, "for header")
        cond = None
        if not self.at(TokenKind.SEMICOLON):
            cond = self.parse_expression()
        self.expect(TokenKind.SEMICOLON, "for header")
        step = None
        if not self.at(TokenKind.RPAREN):
            step = self.parse_expr_or_assign()
        self.expect(TokenKind.RPAREN, "for header")
        body = self._parse_statement_as_block()
        return ast.For(
            init=init, cond=cond, step=step, body=body, span=start.span.merge(body.span)
        )

    def parse_while(self) -> ast.While:
        start = self.expect(TokenKind.KW_WHILE)
        self.expect(TokenKind.LPAREN, "while condition")
        cond = self.parse_expression()
        self.expect(TokenKind.RPAREN, "while condition")
        body = self._parse_statement_as_block()
        return ast.While(cond=cond, body=body, span=start.span.merge(body.span))

    def parse_return(self) -> ast.Return:
        start = self.expect(TokenKind.KW_RETURN)
        value = None
        if not self.at(TokenKind.SEMICOLON):
            value = self.parse_expression()
        semi = self.expect(TokenKind.SEMICOLON, "return statement")
        return ast.Return(value=value, span=start.span.merge(semi.span))

    def parse_var_decl(self) -> ast.VarDecl:
        """Parse one declaration (without the trailing semicolon).

        Handles all of::

            __tunable unsigned p;
            __shared int tmp[in.Size()];
            __shared _atomicAdd int partial;
            Sequence start(i * tile);
            Map map(sum, partition(in, p, start, inc, end));
            Vector vthread();
            int val = 0;
        """
        start = self.peek()
        shared = False
        tunable = False
        atomic = None
        while True:
            token = self.peek()
            if token.kind is TokenKind.KW_SHARED:
                shared = True
                self.advance()
            elif token.kind is TokenKind.KW_TUNABLE:
                tunable = True
                self.advance()
            elif token.kind in ATOMIC_QUALIFIER_KINDS:
                if atomic is not None:
                    raise ParseError(
                        "multiple atomic qualifiers on one declaration", token.span
                    )
                atomic = ATOMIC_QUALIFIER_KINDS[token.kind]
                self.advance()
            else:
                break

        token = self.peek()
        if token.kind is TokenKind.KW_VECTOR:
            return self._parse_primitive_decl(start, VECTOR, shared, tunable, atomic)
        if token.kind is TokenKind.KW_SEQUENCE:
            return self._parse_primitive_decl(start, SEQUENCE, shared, tunable, atomic)
        if token.kind is TokenKind.KW_MAP:
            return self._parse_map_decl(start, shared, tunable, atomic)

        const = bool(self.accept(TokenKind.KW_CONST))
        if self.at(TokenKind.KW_ARRAY):
            declared = self.parse_container_type(const)
        else:
            declared = self.parse_scalar_type()
        name_token = self.expect(TokenKind.IDENT, "variable name")

        dims = []
        while self.accept(TokenKind.LBRACKET):
            dims.append(self.parse_expression())
            self.expect(TokenKind.RBRACKET, "array dimension")

        init = None
        if self.accept(TokenKind.ASSIGN):
            init = self.parse_expression()
        end_span = init.span if init is not None else name_token.span
        return ast.VarDecl(
            name=name_token.text,
            declared_type=declared,
            dims=dims,
            init=init,
            shared=shared,
            tunable=tunable,
            atomic=atomic,
            span=start.span.merge(end_span),
        )

    def _parse_primitive_decl(self, start, declared_type, shared, tunable, atomic):
        self.advance()  # Vector / Sequence keyword
        name_token = self.expect(TokenKind.IDENT, "declaration name")
        ctor_args = self._parse_ctor_args()
        return ast.VarDecl(
            name=name_token.text,
            declared_type=declared_type,
            ctor_args=ctor_args,
            shared=shared,
            tunable=tunable,
            atomic=atomic,
            span=start.span.merge(self.peek(-1).span if self.pos else start.span),
        )

    def _parse_map_decl(self, start, shared, tunable, atomic):
        self.advance()  # Map keyword
        name_token = self.expect(TokenKind.IDENT, "Map declaration name")
        ctor_args = self._parse_ctor_args()
        if len(ctor_args) != 2:
            raise ParseError(
                "Map declaration takes exactly (function, partition(...))",
                name_token.span,
            )
        return ast.VarDecl(
            name=name_token.text,
            declared_type=None,  # element type resolved by semantic analysis
            ctor_args=ctor_args,
            shared=shared,
            tunable=tunable,
            atomic=atomic,
            span=start.span.merge(name_token.span),
        )

    def _parse_ctor_args(self) -> list:
        self.expect(TokenKind.LPAREN, "constructor arguments")
        args = []
        if not self.at(TokenKind.RPAREN):
            args.append(self.parse_expression())
            while self.accept(TokenKind.COMMA):
                args.append(self.parse_expression())
        self.expect(TokenKind.RPAREN, "constructor arguments")
        return args

    def parse_expr_or_assign(self) -> ast.Stmt:
        """Expression statement, assignment, or ``++``/``--`` statement."""
        expr = self.parse_expression()
        token = self.peek()
        if token.kind in _ASSIGN_OPS:
            op = _ASSIGN_OPS[token.kind]
            self.advance()
            value = self.parse_expression()
            self._check_lvalue(expr)
            return ast.Assign(
                target=expr, op=op, value=value, span=expr.span.merge(value.span)
            )
        if token.kind in (TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS):
            self.advance()
            self._check_lvalue(expr)
            op = "+=" if token.kind is TokenKind.PLUS_PLUS else "-="
            one = ast.IntLiteral(value=1, span=token.span)
            return ast.Assign(
                target=expr, op=op, value=one, span=expr.span.merge(token.span)
            )
        return ast.ExprStmt(expr=expr, span=expr.span)

    @staticmethod
    def _check_lvalue(expr: ast.Expr) -> None:
        if not isinstance(expr, (ast.Ident, ast.Index)):
            raise ParseError(
                "assignment target must be a variable or array element", expr.span
            )

    # -- expressions -----------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(0)
        if not self.accept(TokenKind.QUESTION):
            return cond
        then = self.parse_expression()
        self.expect(TokenKind.COLON, "ternary expression")
        otherwise = self.parse_ternary()
        return ast.Ternary(
            cond=cond,
            then=then,
            otherwise=otherwise,
            span=cond.span.merge(otherwise.span),
        )

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        lhs = self.parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            matched = None
            for kind, text in ops:
                if self.at(kind):
                    matched = text
                    break
            if matched is None:
                return lhs
            self.advance()
            rhs = self.parse_binary(level + 1)
            lhs = ast.Binary(
                op=matched, lhs=lhs, rhs=rhs, span=lhs.span.merge(rhs.span)
            )

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.MINUS:
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(op="-", operand=operand, span=token.span.merge(operand.span))
        if token.kind is TokenKind.PLUS:
            self.advance()
            return self.parse_unary()
        if token.kind is TokenKind.NOT:
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(op="!", operand=operand, span=token.span.merge(operand.span))
        if token.kind is TokenKind.TILDE:
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(op="~", operand=operand, span=token.span.merge(operand.span))
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.at(TokenKind.DOT):
                self.advance()
                method = self.expect(TokenKind.IDENT, "member access").text
                self.expect(TokenKind.LPAREN, "method call")
                args = []
                if not self.at(TokenKind.RPAREN):
                    args.append(self.parse_expression())
                    while self.accept(TokenKind.COMMA):
                        args.append(self.parse_expression())
                close = self.expect(TokenKind.RPAREN, "method call")
                expr = ast.MethodCall(
                    obj=expr, method=method, args=args, span=expr.span.merge(close.span)
                )
            elif self.at(TokenKind.LBRACKET):
                self.advance()
                index = self.parse_expression()
                close = self.expect(TokenKind.RBRACKET, "index expression")
                expr = ast.Index(
                    base=expr, index=index, span=expr.span.merge(close.span)
                )
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.INT_LITERAL:
            self.advance()
            text = token.text
            unsigned = text[-1] in "uU"
            return ast.IntLiteral(
                value=int(text.rstrip("uU"), 0), unsigned=unsigned, span=token.span
            )
        if token.kind is TokenKind.FLOAT_LITERAL:
            self.advance()
            text = token.text
            single = text[-1] in "fF"
            return ast.FloatLiteral(
                value=float(text.rstrip("fF")), single=single, span=token.span
            )
        if token.kind is TokenKind.KW_TRUE:
            self.advance()
            return ast.BoolLiteral(value=True, span=token.span)
        if token.kind is TokenKind.KW_FALSE:
            self.advance()
            return ast.BoolLiteral(value=False, span=token.span)
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.at(TokenKind.LPAREN):
                self.advance()
                args = []
                if not self.at(TokenKind.RPAREN):
                    args.append(self.parse_expression())
                    while self.accept(TokenKind.COMMA):
                        args.append(self.parse_expression())
                close = self.expect(TokenKind.RPAREN, "call expression")
                return ast.Call(
                    name=token.text, args=args, span=token.span.merge(close.span)
                )
            return ast.Ident(name=token.text, span=token.span)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expression()
            self.expect(TokenKind.RPAREN, "parenthesized expression")
            return inner
        raise ParseError(
            f"expected an expression, found {token.text or token.kind.value!r}",
            token.span,
        )


def parse_program(text: str, name: str = "<dsl>") -> ast.Program:
    source = SourceFile(text, name)
    tokens = Lexer(source).tokenize()
    return Parser(tokens, source).parse_program()


def parse_expression(text: str, name: str = "<expr>") -> ast.Expr:
    source = SourceFile(text, name)
    tokens = Lexer(source).tokenize()
    parser = Parser(tokens, source)
    expr = parser.parse_expression()
    parser.expect(TokenKind.EOF, "expression")
    return expr
