"""DySel-style dynamic kernel selection at runtime [33].

The paper notes Tangram can pick the best synthesized version either
with compile-time heuristics or with lightweight dynamic selection at
runtime. :class:`DynamicSelector` pre-tabulates the best tuned version
per input-size bucket for one architecture, then answers ``select(n)``
in O(log #buckets).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from .tuner import (
    DEFAULT_BLOCKS,
    DEFAULT_GRIDS,
    _bulk_profile,
    best_tuned_version,
    sweep_specs,
)

#: Size grid used to build the selection table (powers of four, like the
#: paper's sweep from 64 to 260M elements).
DEFAULT_SIZE_GRID = tuple(4 ** k for k in range(3, 15))


@dataclass
class SelectorEntry:
    max_n: int
    version_key: object
    tunables: object
    time_s: float


@dataclass
class DynamicSelector:
    framework: object
    arch: object
    entries: list = field(default_factory=list)

    @classmethod
    def build(
        cls,
        framework,
        arch,
        sizes=DEFAULT_SIZE_GRID,
        candidates=None,
        blocks=DEFAULT_BLOCKS,
        grids=DEFAULT_GRIDS,
        max_workers=None,
    ) -> "DynamicSelector":
        """Tune/tabulate the best version at each size in ``sizes``.

        The full size × candidate × config grid is profiled up front in
        one parallel batch, so table construction is one fan-out rather
        than one sweep per size.
        """
        _bulk_profile(
            framework,
            sweep_specs(framework, sizes, candidates, blocks, grids),
            max_workers=max_workers,
        )
        entries = []
        for n in sorted(sizes):
            key, tunables, seconds = best_tuned_version(
                framework, n, arch, candidates, blocks, grids
            )
            entries.append(
                SelectorEntry(
                    max_n=n, version_key=key, tunables=tunables, time_s=seconds
                )
            )
        return cls(framework=framework, arch=arch, entries=entries)

    def select(self, n: int) -> SelectorEntry:
        """The table entry covering input size ``n``."""
        if not self.entries:
            raise RuntimeError("selector table is empty; call build() first")
        keys = [entry.max_n for entry in self.entries]
        index = bisect.bisect_left(keys, n)
        index = min(index, len(self.entries) - 1)
        return self.entries[index]

    def reduce(self, data):
        """Run the selected version on actual data (functional)."""
        entry = self.select(len(data))
        return self.framework.run(data, entry.version_key, entry.tunables)

    def explain(self, n: int, candidates=None, top: int = 3) -> dict:
        """Why the entry covering ``n`` wins its bucket, counter-cited.

        Re-derives the bucket's tuning verdict (pure cache hits after
        :meth:`build`) and returns
        :func:`repro.autotune.tuner.explain_pruning`'s attribution —
        the winner, the runner-up it pruned, and the timing-model
        components (with their counters) that account for the margin.
        """
        from .tuner import explain_pruning, tune_all

        entry = self.select(n)
        results = tune_all(
            self.framework, entry.max_n, self.arch, candidates
        )
        return explain_pruning(
            self.framework, results, entry.max_n, self.arch, top=top
        )
