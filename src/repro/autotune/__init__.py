"""Autotuning (Section IV-C) and DySel-style runtime selection [33]."""

from .selector import DEFAULT_SIZE_GRID, DynamicSelector, SelectorEntry
from .tuner import (
    DEFAULT_BLOCKS,
    DEFAULT_GRIDS,
    TuneResult,
    best_tuned_version,
    configurations,
    explain_pruning,
    tune_all,
    tune_version,
)

__all__ = [
    "DEFAULT_BLOCKS",
    "DEFAULT_GRIDS",
    "DEFAULT_SIZE_GRID",
    "DynamicSelector",
    "SelectorEntry",
    "TuneResult",
    "best_tuned_version",
    "configurations",
    "explain_pruning",
    "tune_all",
    "tune_version",
]
