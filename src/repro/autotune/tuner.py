"""Autotuning of ``__tunable`` launch parameters (Section IV-C).

The paper tunes every code version's block and grid dimensions "with a
simple script that runs all versions with different tuning parameters"
— this module is that script. :func:`tune_version` sweeps a small
configuration grid for one version and returns the best
:class:`~repro.codegen.synthesize.Tunables`;
:func:`tune_all` does it for a set of versions on one architecture.

Because our timing is a model over cached, architecture-independent
event profiles, a full sweep takes seconds rather than the paper's ~20
minutes. The sweep first bulk-profiles every missing (version ×
tunables) point through ``framework.profile_many`` — which fans work
out over the :mod:`repro.perf.parallel` pool and merges into the shared
profile cache deterministically — then reads the analytic times back
from cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.synthesize import Tunables

#: Default block-dimension sweep (powers of two, full warps).
DEFAULT_BLOCKS = (64, 128, 256, 512)

#: Default partition counts (grid) swept for compound versions.
#: ``None`` lets the synthesizer derive the grid from the input size.
DEFAULT_GRIDS = (None, 128, 256, 512, 1024)


@dataclass
class TuneResult:
    version_key: object
    tunables: Tunables
    time_s: float
    trials: list = field(default_factory=list)  # (Tunables, seconds)


def configurations(version, blocks=DEFAULT_BLOCKS, grids=DEFAULT_GRIDS):
    """The tuning grid for one version (coop versions ignore ``grid``)."""
    configs = []
    for block in blocks:
        if version.block_kind == "coop":
            configs.append(Tunables(block=block))
        else:
            for grid in grids:
                configs.append(Tunables(block=block, grid=grid))
    return configs


def sweep_specs(
    framework,
    sizes,
    candidates=None,
    blocks=DEFAULT_BLOCKS,
    grids=DEFAULT_GRIDS,
):
    """The full ``(version, n, tunables)`` grid a tuning sweep profiles.

    One canonical enumeration — sorted sizes × catalog order ×
    :func:`configurations` — shared by :func:`tune_all`,
    :meth:`~repro.autotune.selector.DynamicSelector.build` and the
    ``repro sweep`` CLI, so a sweep sharded by profile-key hash covers
    *exactly* the grid a single-process ``tune_all`` would profile.
    """
    candidates = (
        candidates if candidates is not None else list(framework.catalog)
    )
    resolved = [framework.resolve(key) for key in candidates]
    return [
        (version, int(n), tunables)
        for n in sorted(int(size) for size in sizes)
        for version in resolved
        for tunables in configurations(version, blocks, grids)
    ]


def _bulk_profile(framework, specs, max_workers=None) -> None:
    """Pre-profile many points at once when the framework supports it."""
    profile_many = getattr(framework, "profile_many", None)
    if profile_many is not None and len(specs) > 1:
        profile_many(specs, max_workers=max_workers)


def tune_version(
    framework,
    version,
    n: int,
    arch,
    blocks=DEFAULT_BLOCKS,
    grids=DEFAULT_GRIDS,
    max_workers=None,
) -> TuneResult:
    """Sweep tuning parameters for one version at input size ``n``."""
    resolved = framework.resolve(version)
    configs = configurations(resolved, blocks, grids)
    _bulk_profile(
        framework,
        [(resolved, n, tunables) for tunables in configs],
        max_workers=max_workers,
    )
    best = None
    trials = []
    for tunables in configs:
        seconds = framework.time(n, resolved, arch, tunables)
        trials.append((tunables, seconds))
        if best is None or seconds < best[1]:
            best = (tunables, seconds)
    return TuneResult(
        version_key=version, tunables=best[0], time_s=best[1], trials=trials
    )


def tune_all(
    framework,
    n: int,
    arch,
    candidates=None,
    blocks=DEFAULT_BLOCKS,
    grids=DEFAULT_GRIDS,
    max_workers=None,
) -> dict:
    """Tune every candidate version; returns ``{key: TuneResult}``.

    This reproduces the paper's tuning run ("for the biggest problem
    size"); pass the sweep's largest ``n``. The whole candidate × config
    grid is profiled up front in one parallel batch.
    """
    candidates = candidates if candidates is not None else list(framework.catalog)
    _bulk_profile(
        framework,
        sweep_specs(framework, [n], candidates, blocks, grids),
        max_workers=max_workers,
    )
    return {
        key: tune_version(framework, key, n, arch, blocks, grids)
        for key in candidates
    }


def best_tuned_version(
    framework,
    n: int,
    arch,
    candidates=None,
    blocks=DEFAULT_BLOCKS,
    grids=DEFAULT_GRIDS,
    max_workers=None,
):
    """Best (version key, Tunables, seconds) across candidates at size n."""
    results = tune_all(
        framework, n, arch, candidates, blocks, grids, max_workers=max_workers
    )
    key = min(results, key=lambda k: results[k].time_s)
    winner = results[key]
    return key, winner.tunables, winner.time_s


def explain_pruning(framework, results, n: int, arch, top: int = 3) -> dict:
    """Counter-cited justification for a tuning verdict.

    ``results`` is :func:`tune_all`'s ``{key: TuneResult}``. The
    runner-up is diffed against the winner through
    :func:`repro.obs.explain.diff_explanations` (each under its own
    tuned launch parameters), so the pruning decision cites the same
    component/counter attribution ``repro explain --diff`` prints —
    the timing model's own additive verdict, not a heuristic. The
    returned ``cited`` rows are the top nonzero component deltas,
    each carrying its counter citations.
    """
    from ..obs.explain import diff_explanations, explain_variant

    if len(results) < 2:
        raise ValueError("explain_pruning needs at least two candidates")
    order = sorted(results, key=lambda key: results[key].time_s)
    winner_key, runner_key = order[0], order[1]
    winner, runner = results[winner_key], results[runner_key]
    runner_expl = explain_variant(
        framework, runner_key, n, arch, runner.tunables, coverage=False
    )
    winner_expl = explain_variant(
        framework, winner_key, n, arch, winner.tunables, coverage=False
    )
    diff = diff_explanations(runner_expl, winner_expl)
    return {
        "winner": winner_expl["identifier"],
        "runner_up": runner_expl["identifier"],
        "margin_s": runner.time_s - winner.time_s,
        "cited": [row for row in diff["ranking"] if row["delta_s"]][:top],
        "diff": diff,
    }
