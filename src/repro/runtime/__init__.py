"""Host runtime: the end-to-end reduction framework."""

from .session import (
    ReduceResult,
    ReductionFramework,
    cub_time,
    kokkos_time,
    openmp_time,
)

__all__ = [
    "ReduceResult",
    "ReductionFramework",
    "cub_time",
    "kokkos_time",
    "openmp_time",
]
