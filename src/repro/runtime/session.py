"""High-level runtime: compile once, then run or time any code version.

:class:`ReductionFramework` is the public entry point of the library::

    from repro import ReductionFramework

    fw = ReductionFramework(op="add")
    result = fw.run(data, version="p")          # Figure 6 version (p)
    seconds = fw.time(len(data), "p", "kepler") # modelled wall time
    label, _ = fw.best_version(len(data), "maxwell")

Timing runs execute a *sampled* subset of blocks on the functional
simulator to collect events, then feed the analytic per-architecture
model. Events are architecture-independent, so one profile serves all
three GPUs; profiles are cached per (version, n, tunables).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import CUB_HOST_OVERHEAD_S, build_cub_plan, build_kokkos_plan
from ..codegen.synthesize import Tunables, build_plan
from ..core.pipeline import PreprocessResult, preprocess
from ..core.sources import load_reduction_program
from ..core.variants import (
    FIG6,
    Version,
    enumerate_versions,
    fig6_label,
    prune_versions,
)
from ..cpu import openmp_reduce_time
from ..gpusim import (
    Architecture,
    Device,
    Executor,
    PlanProfile,
    get_architecture,
    plan_time,
)
from ..vir import MemsetStep

#: Default number of blocks executed when profiling large launches.
_PROFILE_SAMPLE = 3


@dataclass
class ReduceResult:
    """Outcome of a functional reduction run."""

    value: float
    version: Version
    label: str
    plan_name: str
    profile: PlanProfile


class ReductionFramework:
    """DSL → AST passes → version synthesis → simulation/timing."""

    def __init__(self, op: str = "add", ctype: str = "float", unroll: bool = False):
        self.op = op
        self.ctype = ctype
        self.unroll = unroll
        self.analyzed = load_reduction_program(op, ctype)
        self.pre: PreprocessResult = preprocess(self.analyzed, unroll=unroll)
        self.all_versions = enumerate_versions()
        self.versions = prune_versions(self.all_versions)
        self.catalog = dict(FIG6)
        self._profile_cache = {}

    # -- version resolution ------------------------------------------------

    def resolve(self, version) -> Version:
        if isinstance(version, Version):
            return version
        if isinstance(version, str):
            if version in self.catalog:
                return self.catalog[version]
            for candidate in self.all_versions:
                if candidate.identifier == version:
                    return candidate
            raise KeyError(
                f"unknown version {version!r}; use a Figure 6 label "
                f"(a-p) or a version identifier"
            )
        raise TypeError(f"cannot resolve version from {version!r}")

    # -- functional execution -------------------------------------------------

    def build(self, version, n: int, tunables: Tunables = None):
        return build_plan(self.pre, self.resolve(version), n, tunables)

    @property
    def dtype(self):
        """Device element type implied by the DSL element type."""
        return np.int32 if self.ctype == "int" else np.float32

    def run(
        self, data: np.ndarray, version="p", tunables: Tunables = None
    ) -> ReduceResult:
        """Reduce ``data`` with one synthesized version, fully executed."""
        data = np.ascontiguousarray(data, dtype=self.dtype)
        if data.ndim != 1 or data.size == 0:
            raise ValueError("run() needs a non-empty 1-D array")
        resolved = self.resolve(version)
        plan = build_plan(self.pre, resolved, data.size, tunables)
        executor = Executor()
        executor.device.upload("in", data)
        profile = executor.run_plan(plan)
        return ReduceResult(
            value=profile.result,
            version=resolved,
            label=fig6_label(resolved),
            plan_name=plan.name,
            profile=profile,
        )

    # -- timing ---------------------------------------------------------------

    def profile(
        self, version, n: int, tunables: Tunables = None, sample_limit: int = None
    ):
        """Sampled event profile of one version at size n (cached)."""
        resolved = self.resolve(version)
        key = (resolved, n, tunables)
        if key in self._profile_cache:
            return self._profile_cache[key]
        plan = build_plan(self.pre, resolved, n, tunables)
        profile = _profile_plan(plan, n, sample_limit)
        num_memsets = sum(
            1 for step in plan.steps if isinstance(step, MemsetStep)
        )
        entry = (profile, num_memsets)
        self._profile_cache[key] = entry
        return entry

    def time(
        self,
        n: int,
        version,
        arch,
        tunables: Tunables = None,
        sample_limit: int = None,
    ) -> float:
        """Modelled wall time (seconds) of one version on one architecture."""
        arch = _resolve_arch(arch)
        profile, num_memsets = self.profile(version, n, tunables, sample_limit)
        return plan_time(profile, arch, num_memsets=num_memsets)

    def best_version(
        self,
        n: int,
        arch,
        candidates=None,
        tunables: Tunables = None,
    ):
        """Fastest version at size n on an architecture.

        ``candidates`` defaults to the Figure 6 catalog (the versions the
        paper plots); pass ``self.versions`` for the full pruned space.
        """
        arch = _resolve_arch(arch)
        if candidates is None:
            candidates = list(self.catalog)
        best_key, best_time = None, float("inf")
        for candidate in candidates:
            seconds = self.time(n, candidate, arch, tunables)
            if seconds < best_time:
                best_key, best_time = candidate, seconds
        return best_key, best_time


# ---------------------------------------------------------------------
# Baseline timing helpers (shared by benches and examples)
# ---------------------------------------------------------------------

_baseline_cache = {}


def _profile_plan(plan, n: int, sample_limit: int = None) -> PlanProfile:
    device = Device()
    device.alloc("in", n, dtype=np.float32)
    executor = Executor(device=device)
    if sample_limit is None:
        max_grid = max(step.grid for step in plan.kernel_steps())
        sample_limit = None if max_grid <= 64 else _PROFILE_SAMPLE
    return executor.run_plan(plan, sample_limit=sample_limit)


def cub_time(n: int, arch, op: str = "add") -> float:
    """Modelled wall time of the CUB-like baseline."""
    arch = _resolve_arch(arch)
    key = ("cub", n, op)
    if key not in _baseline_cache:
        plan = build_cub_plan(n, op)
        _baseline_cache[key] = _profile_plan(plan, n)
    profile = _baseline_cache[key]
    return plan_time(
        profile, arch, extra_host_overhead_s=CUB_HOST_OVERHEAD_S
    )


def kokkos_time(n: int, arch, op: str = "add") -> float:
    """Modelled wall time of the Kokkos-like baseline."""
    arch = _resolve_arch(arch)
    key = ("kokkos", n, op)
    if key not in _baseline_cache:
        plan = build_kokkos_plan(n, op)
        _baseline_cache[key] = _profile_plan(plan, n)
    profile = _baseline_cache[key]
    return plan_time(profile, arch)


def openmp_time(n: int) -> float:
    """Modelled wall time of the OpenMP CPU baseline."""
    return openmp_reduce_time(n)


def _resolve_arch(arch) -> Architecture:
    if isinstance(arch, Architecture):
        return arch
    return get_architecture(arch)
