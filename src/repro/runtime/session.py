"""High-level runtime: compile once, then run or time any code version.

:class:`ReductionFramework` is the public entry point of the library::

    from repro import ReductionFramework

    fw = ReductionFramework(op="add")
    result = fw.run(data, version="p")          # Figure 6 version (p)
    seconds = fw.time(len(data), "p", "kepler") # modelled wall time
    label, _ = fw.best_version(len(data), "maxwell")

Timing runs execute a *sampled* subset of blocks on the functional
simulator to collect events, then feed the analytic per-architecture
model. Events are architecture-independent, so one profile serves all
three GPUs; profiles live in the unified content-hash-keyed cache of
:mod:`repro.perf` (shared across framework instances, with an optional
on-disk tier), and sweeps over many (version × size × tunables) points
fan out over the :mod:`repro.perf.parallel` pool.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..baselines import CUB_HOST_OVERHEAD_S, build_cub_plan, build_kokkos_plan
from ..codegen.synthesize import Tunables, build_plan_cached
from ..core.pipeline import PreprocessResult, preprocess
from ..core.sources import load_reduction_program
from ..core.variants import (
    FIG6,
    Version,
    enumerate_versions,
    fig6_label,
    prune_versions,
)
from ..cpu import openmp_reduce_time
from ..gpusim import (
    Architecture,
    Device,
    Executor,
    PlanProfile,
    get_architecture,
    parse_engine_spec,
    plan_time,
)
from ..obs import default_metrics, get_tracer
from ..perf import ProfileCache, content_key, default_cache, map_profiles
from ..vir import MemsetStep

#: Default number of blocks executed when profiling large launches.
_PROFILE_SAMPLE = 3

# The DSL frontend (program load + preprocessing passes) is pure per
# (op, ctype, unroll) configuration, so its results are shared across
# every ReductionFramework instance in the process — including the
# profile_many worker threads and the serve scheduler threads, which
# each construct a framework. Builds are serialized *per key*: holding
# one global lock across the (expensive) load would convoy a server's
# unrelated sessions — e.g. an (add, float) request stalled behind a
# (max, int) frontend build — so the global lock only guards the two
# dicts and a short per-key lock guards each build.
_frontend_lock = threading.Lock()
_FRONTEND_MEMO = {}
_FRONTEND_BUILDING = {}


def _frontend(op: str, ctype: str, unroll: bool):
    key = (op, ctype, unroll)
    entry = _FRONTEND_MEMO.get(key)  # lock-free fast path (GIL-atomic read)
    if entry is not None:
        return entry
    with _frontend_lock:
        build_lock = _FRONTEND_BUILDING.setdefault(key, threading.Lock())
    with build_lock:
        entry = _FRONTEND_MEMO.get(key)
        if entry is None:
            with get_tracer().span(
                "frontend.load", op=op, ctype=ctype, unroll=unroll
            ):
                analyzed = load_reduction_program(op, ctype)
                entry = (analyzed, preprocess(analyzed, unroll=unroll))
            _FRONTEND_MEMO[key] = entry
        return entry


@dataclass
class ReduceResult:
    """Outcome of a functional reduction run."""

    value: float
    version: Version
    label: str
    plan_name: str
    profile: PlanProfile


class ReductionFramework:
    """DSL → AST passes → version synthesis → simulation/timing.

    **Thread safety**: one instance may serve concurrent :meth:`run` /
    :meth:`profile` calls (the serve worker threads do exactly that).
    This holds because every per-call mutable object — the
    :class:`Executor`, its :class:`Device`, the profile being built —
    is constructed inside the call, while all shared state is reached
    only through thread-safe components: the frontend memo above, the
    process-wide plan/profile caches, and the id-keyed kernel memos
    (plain dict reads/writes of immutable values, atomic under the
    GIL; a lost race costs a duplicate build, never a wrong result).
    Instance attributes are never written after ``__init__``.
    """

    def __init__(
        self,
        op: str = "add",
        ctype: str = "float",
        unroll: bool = False,
        cache: ProfileCache = None,
        engine: str = "auto",
    ):
        self.op = op
        self.ctype = ctype
        self.unroll = unroll
        # ``engine`` is a simulator spec ("auto", "batched", "compiled",
        # "sequential-interpreted", ...) applied to every run/profile of
        # this instance unless overridden per call.
        self.engine_mode, self.engine_backend = parse_engine_spec(engine)
        self.analyzed, self.pre = _frontend(op, ctype, unroll)
        self.all_versions = enumerate_versions()
        self.versions = prune_versions(self.all_versions)
        self.catalog = dict(FIG6)
        self.cache = cache if cache is not None else default_cache()
        # The pass log fingerprints the preprocessing configuration, so
        # cached profiles invalidate when any pass changes behaviour.
        self._pipeline_sig = hashlib.sha256(
            "\n".join(self.pre.log).encode("utf-8")
        ).hexdigest()[:16]

    # -- version resolution ------------------------------------------------

    def resolve(self, version) -> Version:
        if isinstance(version, Version):
            return version
        if isinstance(version, str):
            if version in self.catalog:
                return self.catalog[version]
            for candidate in self.all_versions:
                if candidate.identifier == version:
                    return candidate
            raise KeyError(
                f"unknown version {version!r}; use a Figure 6 label "
                f"(a-p) or a version identifier"
            )
        raise TypeError(f"cannot resolve version from {version!r}")

    # -- functional execution -------------------------------------------------

    def build(self, version, n: int, tunables: Tunables = None):
        return build_plan_cached(
            self.pre,
            self.resolve(version),
            n,
            tunables,
            backend=self.engine_backend,
        )

    @property
    def dtype(self):
        """Device element type implied by the DSL element type."""
        return np.int32 if self.ctype == "int" else np.float32

    def run(
        self,
        data: np.ndarray,
        version="p",
        tunables: Tunables = None,
        engine_mode: str = None,
    ) -> ReduceResult:
        """Reduce ``data`` with one synthesized version, fully executed.

        ``engine_mode`` is an engine spec combining an execution mode
        (``auto`` | ``batched`` | ``sequential``) and a dispatch backend
        (``compiled`` | ``interpreted``), e.g. ``"batched"``,
        ``"interpreted"`` or ``"sequential-interpreted"``. Every
        combination is bit-identical in results and event counts;
        ``batched`` + ``compiled`` (the default) is the fastest. ``None``
        uses the spec the framework was constructed with.
        """
        data = np.ascontiguousarray(data, dtype=self.dtype)
        if data.ndim != 1 or data.size == 0:
            raise ValueError("run() needs a non-empty 1-D array")
        resolved = self.resolve(version)
        if engine_mode is None:
            mode, backend = self.engine_mode, self.engine_backend
        else:
            mode, backend = parse_engine_spec(engine_mode)
        plan = build_plan_cached(
            self.pre, resolved, data.size, tunables, backend=backend
        )
        executor = Executor(mode=mode, backend=backend)
        executor.device.upload("in", data)
        profile = executor.run_plan(plan)
        return ReduceResult(
            value=profile.result,
            version=resolved,
            label=fig6_label(resolved),
            plan_name=plan.name,
            profile=profile,
        )

    # -- timing ---------------------------------------------------------------

    def profile_key(
        self, version, n: int, tunables: Tunables = None, sample_limit: int = None
    ) -> str:
        """Unified-cache key for one profiling point (content hash)."""
        resolved = self.resolve(version)
        t = tunables or Tunables()
        return content_key(
            kind="profile",
            op=self.op,
            ctype=self.ctype,
            dtype=str(np.dtype(self.dtype)),
            version=resolved.identifier,
            n=int(n),
            block=t.block,
            grid=t.grid,
            unroll=self.unroll,
            passes=self._pipeline_sig,
            sample=sample_limit,
        )

    def profile(
        self, version, n: int, tunables: Tunables = None, sample_limit: int = None
    ):
        """Sampled event profile of one version at size n (cached)."""
        resolved = self.resolve(version)
        key = self.profile_key(resolved, n, tunables, sample_limit)
        entry = self.cache.get(key)
        if entry is not None:
            return entry
        start = time.perf_counter()
        with get_tracer().span(
            "sweep.point", version=resolved.identifier, n=int(n)
        ):
            plan = build_plan_cached(
                self.pre,
                resolved,
                n,
                tunables,
                backend=self.engine_backend,
            )
            profile = _profile_plan(
                plan,
                n,
                sample_limit,
                mode=self.engine_mode,
                backend=self.engine_backend,
            )
        num_memsets = sum(
            1 for step in plan.steps if isinstance(step, MemsetStep)
        )
        entry = (profile, num_memsets)
        self.cache.put(key, entry, cost_s=time.perf_counter() - start)
        return entry

    def profile_many(
        self,
        specs,
        sample_limit: int = None,
        max_workers: int = None,
    ):
        """Profile many ``(version, n, tunables)`` points, fanning the
        missing ones out over the :mod:`repro.perf.parallel`
        work-stealing scheduler.

        Each completed profile **streams** into the shared cache the
        moment its worker finishes (so concurrent readers see results
        mid-sweep), then the cache's LRU recency is re-established in
        spec order — the final cache state is deterministic regardless
        of worker completion order. Results are returned aligned with
        ``specs``.
        """
        resolved = [
            (self.resolve(version), int(n), tunables)
            for version, n, tunables in specs
        ]
        keys = [
            self.profile_key(version, n, tunables, sample_limit)
            for version, n, tunables in resolved
        ]
        missing = [
            index
            for index, key in enumerate(keys)
            if key not in self.cache
        ]
        # Every miss — including a single one — goes through map_profiles,
        # so cost_s accounting and metrics are identical whether the pool
        # ran in parallel, serially, or for exactly one spec.
        if missing:
            worker_specs = [
                (
                    self.op,
                    self.ctype,
                    self.unroll,
                    resolved[index][0],
                    resolved[index][1],
                    resolved[index][2],
                    sample_limit,
                )
                for index in missing
            ]
            missing_keys = [keys[index] for index in missing]

            def _insert(position, result):
                # Streaming insert, called in completion order as each
                # worker finishes its spec.
                profile, num_memsets, cost_s = result
                key = missing_keys[position]
                if key not in self.cache:
                    self.cache.put(key, (profile, num_memsets), cost_s=cost_s)

            map_profiles(
                worker_specs, max_workers=max_workers, on_result=_insert
            )
            # Completion order varies run to run; touching in spec order
            # restores deterministic LRU recency (and thus eviction
            # order) identical to a serial sweep.
            self.cache.touch(missing_keys)
        metrics = default_metrics()
        metrics.inc("sweep.points", len(resolved))
        metrics.inc("sweep.misses", len(missing))
        return [
            self.profile(version, n, tunables, sample_limit)
            for version, n, tunables in resolved
        ]

    def time(
        self,
        n: int,
        version,
        arch,
        tunables: Tunables = None,
        sample_limit: int = None,
    ) -> float:
        """Modelled wall time (seconds) of one version on one architecture."""
        arch = _resolve_arch(arch)
        profile, num_memsets = self.profile(version, n, tunables, sample_limit)
        with get_tracer().span(
            "timing.model",
            arch=arch.name,
            version=self.resolve(version).identifier,
            n=int(n),
        ) as span:
            seconds = plan_time(profile, arch, num_memsets=num_memsets)
            span.set(seconds=seconds)
        return seconds

    def best_version(
        self,
        n: int,
        arch,
        candidates=None,
        tunables: Tunables = None,
        max_workers: int = None,
    ):
        """Fastest version at size n on an architecture.

        ``candidates`` defaults to the Figure 6 catalog (the versions the
        paper plots); pass ``self.versions`` for the full pruned space.
        Missing profiles are computed in parallel; the timing model then
        reads them back from the shared cache.
        """
        arch = _resolve_arch(arch)
        if candidates is None:
            candidates = list(self.catalog)
        self.profile_many(
            [(candidate, n, tunables) for candidate in candidates],
            max_workers=max_workers,
        )
        best_key, best_time = None, float("inf")
        for candidate in candidates:
            seconds = self.time(n, candidate, arch, tunables)
            if seconds < best_time:
                best_key, best_time = candidate, seconds
        return best_key, best_time


# ---------------------------------------------------------------------
# Baseline timing helpers (shared by benches and examples)
# ---------------------------------------------------------------------


def _profile_plan(
    plan,
    n: int,
    sample_limit: int = None,
    mode: str = "auto",
    backend: str = "compiled",
) -> PlanProfile:
    # The input buffer's dtype must match the plan's element type — an
    # int-element framework profiles against an int32 device array (the
    # transaction/coalescing counters depend on the element width).
    dtype = np.dtype(plan.meta.get("dtype", "float32"))
    device = Device()
    device.alloc("in", n, dtype=dtype)
    executor = Executor(device=device, mode=mode, backend=backend)
    if sample_limit is None:
        max_grid = max(step.grid for step in plan.kernel_steps())
        sample_limit = None if max_grid <= 64 else _PROFILE_SAMPLE
    return executor.run_plan(plan, sample_limit=sample_limit)


def _baseline_profile(kind: str, n: int, op: str, build) -> PlanProfile:
    """Profile a baseline plan through the unified (bounded) cache."""
    cache = default_cache()
    key = content_key(
        kind=kind, op=op, n=int(n), dtype="float32", ctype="float"
    )

    def compute():
        return _profile_plan(build(n, op), n)

    return cache.get_or_compute(key, compute)


def cub_time(n: int, arch, op: str = "add") -> float:
    """Modelled wall time of the CUB-like baseline."""
    arch = _resolve_arch(arch)
    profile = _baseline_profile("cub", n, op, build_cub_plan)
    return plan_time(
        profile, arch, extra_host_overhead_s=CUB_HOST_OVERHEAD_S
    )


def kokkos_time(n: int, arch, op: str = "add") -> float:
    """Modelled wall time of the Kokkos-like baseline."""
    arch = _resolve_arch(arch)
    profile = _baseline_profile("kokkos", n, op, build_kokkos_plan)
    return plan_time(profile, arch)


def openmp_time(n: int) -> float:
    """Modelled wall time of the OpenMP CPU baseline."""
    return openmp_reduce_time(n)


def _resolve_arch(arch) -> Architecture:
    if isinstance(arch, Architecture):
        return arch
    return get_architecture(arch)
