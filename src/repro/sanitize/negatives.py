"""Deliberately-broken codelets the sanitizer must flag.

Each builder returns a :class:`~repro.vir.program.Plan` carrying a
bug the paper's rewrites could introduce if they went wrong, plus the
diagnostic kinds the sanitizer is required to emit for it (dynamic
and/or static). ``repro.sanitize.report.check_negatives`` runs them and
fails if any goes unflagged — the sanitizer's own regression suite, in
the spirit of mutation testing.

* :func:`tree_no_barrier` — the classic Listing 1 tree reduction with
  the ``__syncthreads`` between the initial shared store and the first
  cross-warp tree step deleted.
* :func:`stripped_atomic` — a shared-memory accumulation whose
  ``atomicAdd`` qualifier was stripped to a plain load/add/store, so
  every lane of the block races on one address.
* :func:`shfl_under_guard` — a warp shuffle executed under a divergent
  guard, reading source lanes the mask has inactivated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..vir.builder import IRBuilder
from ..vir.program import Kernel, KernelStep, MemsetStep, Plan, SharedDecl


@dataclass
class Negative:
    """One broken codelet plus what the sanitizer must say about it."""

    name: str
    plan: Plan
    n: int                      # elements of the "in" buffer
    expect_dynamic: list = field(default_factory=list)  # diagnostic kinds
    expect_lint: list = field(default_factory=list)


def _thread_id(b: IRBuilder):
    tid = b.special("tid")
    ctaid = b.special("ctaid")
    ntid = b.special("ntid")
    gid = b.binop("add", b.binop("mul", ctaid, ntid), tid)
    return tid, gid


def _plan(kernel: Kernel, grid: int, block: int, label: str) -> Plan:
    return Plan(
        name=label,
        steps=[
            MemsetStep("out", 0.0),
            KernelStep(
                kernel=kernel, grid=grid, block=block,
                buffers={"in": "in", "out": "out"},
            ),
        ],
        scratch={"out": 1},
    )


def tree_no_barrier(block: int = 64, grid: int = 2) -> Negative:
    """Tree reduction missing the barrier after the initial store.

    The first tree step (offset ``block/2 >= 32``) makes warp 0 read
    partials warp 1 stored with no intervening ``__syncthreads`` — a
    read-write hazard — and the whole loop runs barrier-free, which the
    static lint proves cannot stay intra-warp.
    """
    b = IRBuilder()
    tid, gid = _thread_id(b)
    v = b.ld_global("in", gid)
    b.st_shared("sdata", tid, v)
    # BUG: `b.bar()` belongs here.
    s = b.mov(block // 2)
    cond = b.fresh("cond")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("gt", s, 0, dst=cond)
    with loop.body:
        guard = b.binop("lt", tid, s)
        with b.if_(guard):
            mine = b.ld_shared("sdata", tid)
            other = b.ld_shared("sdata", b.binop("add", tid, s))
            b.st_shared("sdata", tid, b.binop("add", mine, other))
        b.binop("shr", s, 1, dst=s)
        # BUG: no `b.bar()` inside the loop either.
    done = b.binop("eq", tid, 0)
    with b.if_(done):
        total = b.ld_shared("sdata", 0)
        b.atom_global("add", "out", 0, total)
    kernel = Kernel(
        name="neg_tree_no_barrier",
        buffers=["in", "out"],
        shared=[SharedDecl("sdata", block)],
        body=b.finish(),
    )
    return Negative(
        name="tree-no-barrier",
        plan=_plan(kernel, grid, block, "neg/tree_no_barrier"),
        n=grid * block,
        expect_dynamic=["read-write-hazard"],
        expect_lint=["missing-barrier-in-tree-loop"],
    )


def stripped_atomic(block: int = 64, grid: int = 2) -> Negative:
    """Shared accumulation with the ``atomicAdd`` qualifier stripped.

    Every lane performs ``acc[0] = acc[0] + v`` as a plain load/store:
    a same-instruction write-write race dynamically, and a provable
    multi-lane read-modify-write statically.
    """
    b = IRBuilder()
    tid, gid = _thread_id(b)
    init = b.binop("eq", tid, 0)
    with b.if_(init):
        b.st_shared("acc", 0, 0.0)
    b.bar()
    v = b.ld_global("in", gid)
    old = b.ld_shared("acc", 0)
    # BUG: should be `b.atom_shared("add", "acc", 0, v)`.
    b.st_shared("acc", 0, b.binop("add", old, v))
    b.bar()
    done = b.binop("eq", tid, 0)
    with b.if_(done):
        total = b.ld_shared("acc", 0)
        b.atom_global("add", "out", 0, total)
    kernel = Kernel(
        name="neg_stripped_atomic",
        buffers=["in", "out"],
        shared=[SharedDecl("acc", 1)],
        body=b.finish(),
    )
    return Negative(
        name="stripped-atomic",
        plan=_plan(kernel, grid, block, "neg/stripped_atomic"),
        n=grid * block,
        expect_dynamic=["write-write-hazard"],
        expect_lint=["non-atomic-rmw"],
    )


def shfl_under_guard(block: int = 32, grid: int = 1) -> Negative:
    """Warp shuffle under a divergent guard.

    Lanes 0–15 execute ``shfl.down 8`` while lanes 16–31 are masked
    off; lanes 8–15 therefore read inactive source lanes 16–23 —
    undefined per CUDA, silently stale in the simulator. Only the
    dynamic sanitizer sees masks, so there is no lint expectation.
    """
    b = IRBuilder()
    tid, gid = _thread_id(b)
    v = b.ld_global("in", gid)
    guard = b.binop("lt", tid, 16)
    with b.if_(guard):
        # BUG: the shuffle belongs outside the guard (or the guard
        # below the shuffle) — sources 16..23 are inactive here.
        other = b.shfl(v, "down", 8)
        b.atom_global("add", "out", 0, b.binop("add", v, other))
    kernel = Kernel(
        name="neg_shfl_under_guard",
        buffers=["in", "out"],
        body=b.finish(),
    )
    return Negative(
        name="shfl-under-guard",
        plan=_plan(kernel, grid, block, "neg/shfl_under_guard"),
        n=grid * block,
        expect_dynamic=["shfl-inactive-source"],
        expect_lint=[],
    )


NEGATIVE_BUILDERS = (tree_no_barrier, stripped_atomic, shfl_under_guard)


def all_negatives() -> list:
    return [build() for build in NEGATIVE_BUILDERS]
