"""Sanitizer sweeps and report formatting.

Drives the dynamic sanitizer and the static lint over synthesized
reduction plans — the full Figure 6 catalog × {add,max,min} ×
{float,int} — and over the deliberately-broken negative codelets, and
renders per-variant reports for the CLI and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim import Executor, parse_engine_spec
from .dynamic import Sanitizer
from .lint import lint_plan
from .negatives import all_negatives

#: One spec per execution mode and per dispatch backend: the sweep
#: covers every backend and both execution modes without running the
#: full mode×backend cross product per variant.  The native backend is
#: appended at sweep time by :func:`default_engines` so importing this
#: module never probes the C toolchain.
DEFAULT_ENGINES = ("batched-compiled", "sequential-interpreted",
                   "batched-vector")


def default_engines():
    """The sweep's engine specs, resolved against this host: the static
    :data:`DEFAULT_ENGINES` plus ``batched-native`` when a working C
    toolchain is present — on a bare host the sweep is unchanged rather
    than failing."""
    from ..gpusim.native import native_available

    if native_available():
        return DEFAULT_ENGINES + ("batched-native",)
    return DEFAULT_ENGINES

DEFAULT_OPS = ("add", "max", "min")
DEFAULT_CTYPES = ("float", "int")


@dataclass
class VariantReport:
    """Sanitizer verdict for one (version, op, ctype) across engines."""

    version: str
    op: str
    ctype: str
    dynamic: dict = field(default_factory=dict)  # engine spec -> [Diagnostic]
    lint: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.lint and all(
            not diags for diags in self.dynamic.values()
        )

    def all_diagnostics(self) -> list:
        out = list(self.lint)
        for diags in self.dynamic.values():
            out.extend(diags)
        return out


@dataclass
class NegativeReport:
    """Did the sanitizer flag one deliberately-broken codelet?"""

    name: str
    dynamic: dict = field(default_factory=dict)  # engine spec -> [Diagnostic]
    lint: list = field(default_factory=list)
    missing: list = field(default_factory=list)  # expected kinds not seen

    @property
    def flagged(self) -> bool:
        return not self.missing


def _input_for(n: int, dtype) -> np.ndarray:
    """Deterministic, non-constant input (no RNG: reports must be stable)."""
    base = np.arange(n, dtype=np.int64) % 31 - 7
    return base.astype(dtype)


def run_sanitized(plan, data, engine: str) -> list:
    """Run one plan under the dynamic sanitizer; returns diagnostics."""
    mode, backend = parse_engine_spec(engine)
    sanitizer = Sanitizer()
    executor = Executor(mode=mode, backend=backend, sanitizer=sanitizer)
    executor.device.upload("in", data)
    executor.run_plan(plan)
    return sanitizer.diagnostics


def sanitize_variant(fw, version, n: int, engines=None,
                     lint: bool = True) -> VariantReport:
    """Sanitize one synthesized version at size ``n``."""
    if engines is None:
        engines = default_engines()
    plan = fw.build(version, n)
    report = VariantReport(version=str(version), op=fw.op, ctype=fw.ctype)
    data = _input_for(n, fw.dtype)
    for engine in engines:
        report.dynamic[engine] = run_sanitized(plan, data, engine)
    if lint:
        report.lint = lint_plan(plan)
    return report


def sweep_catalog(n: int, versions=None, ops=DEFAULT_OPS,
                  ctypes=DEFAULT_CTYPES, engines=None,
                  lint: bool = True, progress=None) -> list:
    """Sanitize the catalog cross product; returns VariantReports."""
    if engines is None:
        engines = default_engines()
    from ..core import FIG6
    from ..runtime import ReductionFramework

    labels = list(versions) if versions else sorted(FIG6)
    reports = []
    for op in ops:
        for ctype in ctypes:
            fw = ReductionFramework(op=op, ctype=ctype)
            for label in labels:
                report = sanitize_variant(fw, label, n, engines, lint)
                reports.append(report)
                if progress is not None:
                    progress(report)
    return reports


def check_negatives(engines=None) -> list:
    """Run every negative codelet; each must be flagged as expected."""
    if engines is None:
        engines = default_engines()
    reports = []
    for negative in all_negatives():
        report = NegativeReport(name=negative.name)
        data = _input_for(negative.n, np.float32)
        seen_dynamic = set()
        for engine in engines:
            diags = run_sanitized(negative.plan, data, engine)
            report.dynamic[engine] = diags
            seen_dynamic.update(d.kind for d in diags)
        report.lint = lint_plan(negative.plan)
        seen_lint = {d.kind for d in report.lint}
        report.missing = [
            kind for kind in negative.expect_dynamic
            if kind not in seen_dynamic
        ] + [
            kind for kind in negative.expect_lint if kind not in seen_lint
        ]
        reports.append(report)
    return reports


# -- rendering ----------------------------------------------------------


def format_variant(report: VariantReport) -> list:
    head = f"({report.version}) op={report.op} ctype={report.ctype}"
    if report.clean:
        return [f"  {head}: clean"]
    lines = [f"  {head}: {len(report.all_diagnostics())} diagnostic(s)"]
    for engine, diags in report.dynamic.items():
        for diag in diags:
            lines.append(f"    [{engine}] {diag.render()}")
    for diag in report.lint:
        lines.append(f"    {diag.render()}")
    return lines


def format_negative(report: NegativeReport) -> list:
    verdict = "flagged" if report.flagged else (
        f"NOT FLAGGED (missing: {', '.join(report.missing)})"
    )
    lines = [f"  {report.name}: {verdict}"]
    kinds = set()
    for diags in report.dynamic.values():
        kinds.update(d.render() for d in diags)
    kinds.update(d.render() for d in report.lint)
    for text in sorted(kinds):
        lines.append(f"    {text}")
    return lines


def _diag_dict(diag) -> dict:
    return {
        "kind": diag.kind,
        "source": diag.source,
        "kernel": diag.kernel,
        "instr": diag.instr,
        "message": diag.message,
        "buf": diag.buf,
        "blocks": list(diag.blocks),
        "lanes": list(diag.lanes),
        "addrs": list(diag.addrs),
        "count": diag.count,
    }


def report_json(variant_reports, negative_reports, n: int) -> dict:
    """JSON-serializable report for the CI artifact."""
    return {
        "n": n,
        "clean": all(r.clean for r in variant_reports)
        and all(r.flagged for r in negative_reports),
        "variants": [
            {
                "version": r.version,
                "op": r.op,
                "ctype": r.ctype,
                "clean": r.clean,
                "dynamic": {
                    engine: [_diag_dict(d) for d in diags]
                    for engine, diags in r.dynamic.items()
                },
                "lint": [_diag_dict(d) for d in r.lint],
            }
            for r in variant_reports
        ],
        "negatives": [
            {
                "name": r.name,
                "flagged": r.flagged,
                "missing": r.missing,
                "dynamic": {
                    engine: [_diag_dict(d) for d in diags]
                    for engine, diags in r.dynamic.items()
                },
                "lint": [_diag_dict(d) for d in r.lint],
            }
            for r in negative_reports
        ],
    }
