"""Static SIMT lint: a VIR pass over kernels, no execution required.

Built on the abstract interpreters in :mod:`repro.vir.analysis` — the
uniform-constant evaluator (which the closure compiler already uses to
unroll tree loops) and the block-uniformity tracker. Two checks:

* **missing-barrier-in-tree-loop** — a ``While`` body that stores to a
  shared buffer and loads a *different* address of the same buffer with
  no ``Bar`` anywhere in the loop. Cross-lane shared traffic inside a
  barrier-free loop is only legal while it stays inside one warp
  (lockstep warp-synchronous execution orders it); the pass proves the
  intra-warp case by constant-evaluating the loop-carried offset
  registers that feed the load address but not the store address. An
  offset that reaches ``WARP`` or cannot be bounded is flagged.
* **non-atomic-rmw** — a shared store whose value derives from a load of
  the same buffer at the same *block-uniform* address, executed where
  more than one lane can be active. Every active lane then performs the
  classic racy read-modify-write that ``atomicAdd`` exists to prevent.
  Single-lane regions (``if (tid == 0)`` style guards) are recognized
  and exempt.

Both checks are heuristic in the direction of the generated catalog:
they keep every stock Figure 6 variant clean while flagging the
deliberately-broken codelets in :mod:`repro.sanitize.negatives`. The
dynamic sanitizer remains the ground truth — the lint exists to catch
the same classes of bug without choosing an input size.
"""

from __future__ import annotations

from ..gpusim.engine import WARP
from ..vir.analysis import (
    UNKNOWN,
    eval_const_body,
    eval_const_instr,
    eval_uniform_instr,
)
from ..vir.instructions import (
    Bar,
    BinOp,
    If,
    Imm,
    LdShared,
    Mov,
    Reg,
    Sel,
    Special,
    StShared,
    UnOp,
    While,
    walk_instrs,
)
from ..vir.printer import format_instr
from .dynamic import Diagnostic

#: Special registers that identify exactly one lane when pinned by ==.
_LANE_SPECIALS = frozenset({"tid", "laneid"})

_DEF_CLASSES = (Mov, BinOp, UnOp, Sel, Special)


def lint_kernel(kernel) -> list:
    """Run both static checks over one kernel; returns Diagnostics."""
    defs = _collect_defs(kernel.body)
    diags = []
    _lint_body(kernel, kernel.body, defs, const_env={}, uniform_env={},
               single_lane=False, diags=diags)
    return diags


def lint_plan(plan) -> list:
    """Lint every kernel step of a plan."""
    diags = []
    seen = set()
    for step in plan.kernel_steps():
        if id(step.kernel) in seen:
            continue
        seen.add(id(step.kernel))
        diags.extend(lint_kernel(step.kernel))
    return diags


# -- def/use plumbing ---------------------------------------------------


def _collect_defs(body) -> dict:
    """Register name -> defining scalar instruction (last def wins)."""
    defs = {}
    for instr in walk_instrs(body):
        if isinstance(instr, _DEF_CLASSES):
            defs[instr.dst.name] = instr
    return defs


def _operands(instr):
    for value in vars(instr).values():
        if isinstance(value, (Reg, Imm)):
            yield value


def _slice_regs(roots, defs) -> set:
    """Transitive closure of registers feeding ``roots`` through defs."""
    seen = set()
    work = list(roots)
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        instr = defs.get(name)
        if instr is None or isinstance(instr, Special):
            continue
        for op in _operands(instr):
            if isinstance(op, Reg) and op.name != name:
                work.append(op.name)
    return seen


def _idx_regs(operand) -> set:
    return {operand.name} if isinstance(operand, Reg) else set()


def _is_single_lane_guard(cond: Reg, defs) -> bool:
    """True for conditions of the shape ``<lane id expr> == <constant>``.

    Recognizes the generated ``if (tid == 0)`` / ``if (laneid == 0)``
    guards: an equality whose one side slices down to a per-lane special
    (``tid``/``laneid``) and whose other side is an immediate or a
    block-uniform value.
    """
    instr = defs.get(cond.name)
    while isinstance(instr, Mov) and isinstance(instr.a, Reg):
        instr = defs.get(instr.a.name)
    if not isinstance(instr, BinOp) or instr.op != "eq":
        return False
    for lane_side in (instr.a, instr.b):
        if not isinstance(lane_side, Reg):
            continue
        for name in _slice_regs({lane_side.name}, defs):
            d = defs.get(name)
            if isinstance(d, Special) and d.kind in _LANE_SPECIALS:
                return True
    return False


# -- the recursive walk -------------------------------------------------


def _lint_body(kernel, body, defs, const_env, uniform_env, single_lane,
               diags) -> None:
    for instr in body:
        if isinstance(instr, If):
            guard = single_lane or _is_single_lane_guard(instr.cond, defs)
            # Region-local copies: writes inside are not constant/uniform
            # afterwards (eval_*_instr poisons them below).
            _lint_body(kernel, instr.then, defs, dict(const_env),
                       dict(uniform_env), guard, diags)
            _lint_body(kernel, instr.otherwise, defs, dict(const_env),
                       dict(uniform_env), guard, diags)
        elif isinstance(instr, While):
            _check_tree_loop(kernel, instr, defs, const_env, diags)
            _lint_body(kernel, instr.cond_block, defs, dict(const_env),
                       dict(uniform_env), single_lane, diags)
            _lint_body(kernel, instr.body, defs, dict(const_env),
                       dict(uniform_env), single_lane, diags)
        elif isinstance(instr, StShared) and not single_lane:
            _check_rmw(kernel, instr, body, defs, uniform_env, diags)
        eval_const_instr(instr, const_env)
        eval_uniform_instr(instr, uniform_env)


def _check_rmw(kernel, store: StShared, body, defs, uniform_env,
               diags) -> None:
    """Flag ``sdata[u] = f(sdata[u], ...)`` at a multi-lane program point."""
    if not _uniform_idx(store.idx, uniform_env):
        return
    if not isinstance(store.src, Reg):
        return
    for name in _slice_regs({store.src.name}, defs):
        load = _find_load(name, body)
        if load is None or load.buf != store.buf:
            continue
        if _same_operand(load.idx, store.idx):
            diags.append(Diagnostic(
                kind="non-atomic-rmw",
                kernel=kernel.name,
                instr=format_instr(store).strip(),
                message=(
                    f"shared {store.buf}[{store.idx}] is read-modify-"
                    f"written through `{format_instr(load).strip()}` at a "
                    f"program point where multiple lanes are active — "
                    f"every lane races on the same address; use an "
                    f"atomic or a single-lane guard"
                ),
                buf=store.buf,
                source="lint",
            ))
            return


def _uniform_idx(idx, uniform_env) -> bool:
    if isinstance(idx, Imm):
        return True
    if isinstance(idx, Reg):
        return bool(uniform_env.get(idx.name, False))
    return False


def _same_operand(a, b) -> bool:
    if isinstance(a, Imm) and isinstance(b, Imm):
        return a.value == b.value
    if isinstance(a, Reg) and isinstance(b, Reg):
        return a.name == b.name
    return False


def _find_load(reg_name, body):
    for instr in walk_instrs(body):
        if isinstance(instr, LdShared) and instr.dst.name == reg_name:
            return instr
    return None


def _check_tree_loop(kernel, loop: While, defs, const_env, diags) -> None:
    """Flag barrier-free loops with cross-warp shared store/load traffic."""
    region = list(walk_instrs(loop.cond_block)) + list(walk_instrs(loop.body))
    if any(isinstance(i, Bar) for i in region):
        return
    stores = [i for i in region if isinstance(i, StShared)]
    loads = [i for i in region if isinstance(i, LdShared)]
    if not stores or not loads:
        return
    for store in stores:
        store_slice = _slice_regs(_idx_regs(store.idx), defs)
        for load in loads:
            if load.buf != store.buf or _same_operand(load.idx, store.idx):
                continue
            offset_regs = (
                _slice_regs(_idx_regs(load.idx), defs) - store_slice
            )
            if not offset_regs:
                continue
            bound = _max_offset(loop, offset_regs, const_env)
            if bound is not None and bound < WARP:
                continue  # provably intra-warp: warp-synchronous, legal
            reach = "unbounded" if bound is None else str(bound)
            diags.append(Diagnostic(
                kind="missing-barrier-in-tree-loop",
                kernel=kernel.name,
                instr=format_instr(load).strip(),
                message=(
                    f"loop stores to shared {store.buf} "
                    f"(`{format_instr(store).strip()}`) and reads it "
                    f"cross-lane with no barrier in the loop; the lane "
                    f"offset reaches {reach} (>= warp size {WARP}), so "
                    f"the exchange crosses warps without synchronization"
                ),
                buf=load.buf,
                source="lint",
            ))
            return


def _max_offset(loop: While, offset_regs, const_env):
    """Largest constant value any offset register takes across the loop.

    Simulates the loop over the uniform-constant environment (the same
    interpreter the compiler's unroller uses). Returns ``None`` when a
    relevant register is never a known constant or the loop does not
    terminate constantly — callers treat that as "cannot prove
    intra-warp".
    """
    env = dict(const_env)
    best = None
    for _ in range(WARP * 8):  # generous trip cap for >>=1 style loops
        eval_const_body(loop.cond_block, env)
        best = _fold_offsets(env, offset_regs, best)
        cond = env.get(loop.cond.name, UNKNOWN)
        if cond is UNKNOWN:
            return best
        if not cond:
            return best
        eval_const_body(loop.body, env)
        best = _fold_offsets(env, offset_regs, best)
    return None


def _fold_offsets(env, offset_regs, best):
    for name in offset_regs:
        value = env.get(name, UNKNOWN)
        if value is UNKNOWN or isinstance(value, float):
            continue
        value = abs(int(value))
        if best is None or value > best:
            best = value
    return best
