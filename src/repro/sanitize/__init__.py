"""SIMT correctness tooling: dynamic sanitizer + static lint.

The missing correctness gate for the paper's rewrites: every generated
variant can be executed under a shadow-state **dynamic sanitizer**
(data races between barriers, barrier divergence, shuffles from
mask-inactivated lanes) and checked by a **static lint** over VIR
(barrier-free cross-warp tree loops, multi-lane non-atomic
read-modify-writes). See ``docs/SANITIZER.md`` and the ``sanitize``
CLI verb.
"""

from .dynamic import Diagnostic, Sanitizer
from .lint import lint_kernel, lint_plan
from .negatives import NEGATIVE_BUILDERS, all_negatives
from .report import (
    DEFAULT_ENGINES,
    default_engines,
    NegativeReport,
    VariantReport,
    check_negatives,
    format_negative,
    format_variant,
    report_json,
    run_sanitized,
    sanitize_variant,
    sweep_catalog,
)

__all__ = [
    "Diagnostic",
    "Sanitizer",
    "lint_kernel",
    "lint_plan",
    "NEGATIVE_BUILDERS",
    "all_negatives",
    "DEFAULT_ENGINES",
    "default_engines",
    "NegativeReport",
    "VariantReport",
    "check_negatives",
    "format_negative",
    "format_variant",
    "report_json",
    "run_sanitized",
    "sanitize_variant",
    "sweep_catalog",
]
