"""Dynamic SIMT sanitizer: shadow-state hazard detection for the engines.

An opt-in mode of :class:`repro.gpusim.Executor` (pass ``sanitizer=``).
Both run states — sequential and batched, interpreted and compiled
dispatch — feed the same three hooks from their memory, barrier and
shuffle implementations, so one sanitizer covers all four engine
combinations without touching results or event counters.

Hazard model (see ``docs/SANITIZER.md`` for the full write-up):

* **Lockstep warp order.** The simulator models pre-Volta SIMT: lanes of
  one warp execute each instruction together, so two accesses by the
  same warp at different instructions are ordered and never race. Only
  conflicting accesses from *different warps* (or different lanes at the
  *same* instruction) are hazards.
* **Barrier epochs.** Each warp carries a barrier arrival count. A
  ``Bar`` "arrives" for every warp with at least one active lane —
  hardware barrier arrival is warp-granular, which is why generated
  code may legally execute ``bar.sync`` under a ``laneid == 0`` guard.
  When every warp of the block arrives together, the block is fully
  synchronized and the shadow state's conflict horizon advances.
* **Barrier divergence = mismatched pairing.** Hardware matches barrier
  arrivals by count, and warps that exit the kernel satisfy outstanding
  barriers ("arrive or exit"). The undefined case is two warps of one
  block pairing *different* ``bar.sync`` program points: detected here
  as a barrier event whose arriving warps have unequal arrival counts.
  A region like ``if (warpid == 0) { ... bar; ... }`` at the end of a
  kernel is therefore legal (the other warps exit), while
  ``if (warpid == 0) bar; bar;`` is flagged.
* **Shuffle sources must be active.** ``shfl`` reading a source lane
  that the current mask has inactivated returns stale data on hardware
  (undefined per CUDA); reading the lane's own value via the identity
  fallback is always fine.

Write/read shadow state is tracked per address with the last writer and
the last two distinct-warp readers — enough to catch every hazard the
generated reductions can exhibit while staying fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim.engine import WARP
from ..vir.instructions import (
    AtomGlobal,
    AtomShared,
    LdGlobal,
    LdShared,
    StGlobal,
    StShared,
)
from ..vir.printer import format_instr


@dataclass
class Diagnostic:
    """One sanitizer finding, deduplicated per (kind, kernel, instr)."""

    kind: str        # "write-write-hazard" | "read-write-hazard" |
                     # "barrier-divergence" | "shfl-inactive-source" |
                     # lint kinds (see repro.sanitize.lint)
    kernel: str
    instr: str       # formatted VIR instruction
    message: str
    buf: str = None
    blocks: tuple = ()
    lanes: tuple = ()
    addrs: tuple = ()
    source: str = "dynamic"   # "dynamic" | "lint"
    count: int = 1

    def render(self) -> str:
        where = f" [{self.source}]" if self.source != "dynamic" else ""
        extra = f" (x{self.count})" if self.count > 1 else ""
        return (
            f"{self.kind}{where}: kernel {self.kernel!r}, `{self.instr}`: "
            f"{self.message}{extra}"
        )


class _Shadow:
    """Per-address last-writer / last-two-distinct-warp-reader arrays.

    Addresses are flat keys: ``addr`` for a global buffer,
    ``block * size + addr`` for a shared buffer (one private segment per
    block). Times are the launch's monotone event counter; 0 means
    "never accessed". Warp keys are ``block * warps_per_block + warp``.
    """

    __slots__ = (
        "w_time", "w_lane", "w_warp", "w_block", "w_atomic",
        "r_time", "r_lane", "r_warp", "r_block",
        "r2_time", "r2_lane", "r2_warp", "r2_block",
    )

    def __init__(self, size: int):
        self.w_time = np.zeros(size, dtype=np.int64)
        self.w_lane = np.full(size, -1, dtype=np.int64)
        self.w_warp = np.full(size, -1, dtype=np.int64)
        self.w_block = np.full(size, -1, dtype=np.int64)
        self.w_atomic = np.zeros(size, dtype=bool)
        self.r_time = np.zeros(size, dtype=np.int64)
        self.r_lane = np.full(size, -1, dtype=np.int64)
        self.r_warp = np.full(size, -1, dtype=np.int64)
        self.r_block = np.full(size, -1, dtype=np.int64)
        self.r2_time = np.zeros(size, dtype=np.int64)
        self.r2_lane = np.full(size, -1, dtype=np.int64)
        self.r2_warp = np.full(size, -1, dtype=np.int64)
        self.r2_block = np.full(size, -1, dtype=np.int64)


class Sanitizer:
    """Collects :class:`Diagnostic` objects across a plan's launches."""

    def __init__(self):
        self.diagnostics = []
        self._dedup = {}

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def begin_kernel(self, step, device) -> "_KernelSanitizer":
        return _KernelSanitizer(self, step, device)

    def report(self, kind, kernel, instr, message, buf=None,
               blocks=(), lanes=(), addrs=()) -> None:
        key = (kind, kernel, instr, buf)
        existing = self._dedup.get(key)
        if existing is not None:
            existing.count += 1
            return
        diag = Diagnostic(
            kind=kind, kernel=kernel, instr=instr, message=message,
            buf=buf, blocks=tuple(blocks), lanes=tuple(lanes),
            addrs=tuple(addrs),
        )
        self._dedup[key] = diag
        self.diagnostics.append(diag)


class _KernelSanitizer:
    """Shadow state of one kernel launch (shared by its blocks/chunks)."""

    def __init__(self, parent: Sanitizer, step, device):
        self.parent = parent
        self.step = step
        self.kernel = step.kernel
        self.device = device
        self.grid = step.grid
        self.block = step.block
        self.nwarps = (step.block + WARP - 1) // WARP
        self.t = 0
        #: Per (block, warp) barrier arrival counts.
        self.bar_count = np.zeros((self.grid, self.nwarps), dtype=np.int64)
        #: Per block: time of the last barrier every warp arrived at.
        self.block_sync = np.zeros(self.grid, dtype=np.int64)
        self._shadows = {}
        self._instr_text = {}

    # -- shared plumbing ----------------------------------------------

    def _text(self, instr) -> str:
        text = self._instr_text.get(id(instr))
        if text is None:
            text = format_instr(instr).strip()
            self._instr_text[id(instr)] = text
        return text

    def _active(self, run, idx, mask):
        """(blocks, lanes, addrs) of the active lanes of one access."""
        if mask.ndim == 1:
            lanes = np.flatnonzero(mask)
            blocks = np.full(lanes.shape, run.block_id, dtype=np.int64)
            return blocks, lanes, np.asarray(idx)[mask]
        rows, lanes = np.nonzero(mask)
        return run.block_ids[rows], lanes, np.asarray(idx)[mask]

    def _shadow(self, space, buf, run) -> tuple:
        """Shadow arrays plus the per-block address span for a buffer."""
        key = (space, buf)
        entry = self._shadows.get(key)
        if entry is None:
            if space == "shared":
                size = run.shared[buf].shape[-1]
                entry = (_Shadow(self.grid * size), size)
            else:
                device_name = self.step.buffers.get(buf, buf)
                entry = (_Shadow(len(self.device.get(device_name))), 0)
            self._shadows[key] = entry
        return entry

    # -- hooks (called from both engines) -----------------------------

    def on_mem(self, run, instr, idx, mask) -> None:
        if not mask.any():
            return
        cls = type(instr)
        if cls is LdShared:
            space, write, atomic, width = "shared", False, False, 1
        elif cls is StShared:
            space, write, atomic, width = "shared", True, False, 1
        elif cls is AtomShared:
            space, write, atomic, width = "shared", True, True, 1
        elif cls is LdGlobal:
            space, write, atomic, width = "global", False, False, instr.width
        elif cls is StGlobal:
            space, write, atomic, width = "global", True, False, 1
        elif cls is AtomGlobal:
            space, write, atomic, width = "global", True, True, 1
        else:
            return
        self.t += 1
        blocks, lanes, addrs = self._active(run, idx, mask)
        shadow, span = self._shadow(space, instr.buf, run)
        size = shadow.w_time.shape[0]
        for k in range(width):
            a = addrs if k == 0 else addrs + k
            keys = blocks * span + a if span else a
            b, l = blocks, lanes
            ok = (keys >= 0) & (keys < size)
            if not ok.all():
                # Vector-load tail past the buffer end: the engine raises
                # its own out-of-bounds error right after this hook.
                keys, b, l, a = keys[ok], b[ok], l[ok], a[ok]
                if not keys.size:
                    continue
            if write:
                self._check_write(instr, shadow, keys, b, l, a,
                                  atomic, space)
            else:
                self._check_read(instr, shadow, keys, b, l, a,
                                 atomic, space)

    def on_bar(self, run, mask) -> None:
        self.t += 1
        if mask.ndim == 1:
            if not mask.any():
                return
            warps = np.unique(run._warp_of_lane[mask])
            self._arrive(run.block_id, warps, run)
            return
        per_warp = np.bitwise_or.reduceat(mask, run._warp_starts, axis=1)
        for row in np.flatnonzero(per_warp.any(axis=1)):
            self._arrive(int(run.block_ids[row]),
                         np.flatnonzero(per_warp[row]), run)

    def on_shfl(self, run, instr, source_lane, mask) -> None:
        self.t += 1
        if not mask.any():
            return
        if mask.ndim == 1:
            own = np.arange(run.nthreads, dtype=np.int64)
            source_active = mask[source_lane]
            bad = mask & ~source_active & (source_lane != own)
            if not bad.any():
                return
            lanes = np.flatnonzero(bad)
            blocks = np.full(lanes.shape, run.block_id, dtype=np.int64)
            sources = source_lane[bad]
        else:
            own = np.broadcast_to(
                np.arange(run.nthreads, dtype=np.int64), run.shape
            )
            source_active = np.take_along_axis(mask, source_lane, axis=1)
            bad = mask & ~source_active & (source_lane != own)
            if not bad.any():
                return
            rows, lanes = np.nonzero(bad)
            blocks = run.block_ids[rows]
            sources = source_lane[bad]
        self.parent.report(
            "shfl-inactive-source", self.kernel.name, self._text(instr),
            f"lane {int(lanes[0])} (block {int(blocks[0])}) reads source "
            f"lane {int(sources[0])}, which the current mask has "
            f"inactivated — undefined on hardware",
            blocks=blocks[:4].tolist(), lanes=lanes[:4].tolist(),
        )

    # -- barrier epochs ------------------------------------------------

    def _arrive(self, block_id, warps, run) -> None:
        counts = self.bar_count[block_id]
        counts[warps] += 1
        arrived = counts[warps]
        if arrived.min() != arrived.max():
            lagging = int(warps[np.argmin(arrived)])
            leading = int(warps[np.argmax(arrived)])
            self.parent.report(
                "barrier-divergence", self.kernel.name, "bar.sync",
                f"warps of block {block_id} arrive at this barrier with "
                f"mismatched barrier counts (warp {leading} at "
                f"{int(arrived.max())}, warp {lagging} at "
                f"{int(arrived.min())}) — the block's barriers pair "
                f"different program points",
                blocks=(block_id,), lanes=(leading * WARP, lagging * WARP),
            )
        if len(warps) == self.nwarps:
            self.block_sync[block_id] = self.t

    # -- data hazards --------------------------------------------------

    def _unsynced(self, shadow_time, shadow_block, blocks):
        """True where a previous access is *not* separated from the
        current one by a barrier every warp of the block arrived at
        (cross-block accesses are never synchronized)."""
        return (shadow_time > 0) & ~(
            (shadow_block == blocks) & (self.block_sync[blocks] > shadow_time)
        )

    def _report_conflict(self, kind, instr, buf, space, blocks, lanes, addrs,
                         other_lane, other_block, picks) -> None:
        i = int(np.flatnonzero(picks)[0])
        addr = int(addrs[i])
        self.parent.report(
            kind, self.kernel.name, self._text(instr),
            f"lane {int(lanes[i])} (block {int(blocks[i])}) conflicts with "
            f"lane {int(other_lane[i])} (block {int(other_block[i])}) on "
            f"{space} {buf}[{addr}] with no intervening block-wide barrier",
            buf=buf,
            blocks=(int(blocks[i]), int(other_block[i])),
            lanes=(int(lanes[i]), int(other_lane[i])),
            addrs=(addr,),
        )

    def _check_write(self, instr, shadow, keys, blocks, lanes, addrs,
                     atomic, space) -> None:
        buf = instr.buf
        # Same-instruction write-write: two active lanes, one address.
        if not atomic and keys.size > 1:
            order = np.argsort(keys, kind="stable")
            dup = keys[order][1:] == keys[order][:-1]
            if dup.any():
                i = int(order[1:][dup][0])
                j = int(order[:-1][dup][0])
                self.parent.report(
                    "write-write-hazard", self.kernel.name,
                    self._text(instr),
                    f"lanes {int(lanes[j])} and {int(lanes[i])} (block "
                    f"{int(blocks[i])}) store to {space} {buf}"
                    f"[{int(addrs[i])}] in the same instruction without "
                    f"atomics",
                    buf=buf, blocks=(int(blocks[i]),),
                    lanes=(int(lanes[j]), int(lanes[i])),
                    addrs=(int(addrs[i]),),
                )
        gwarp = blocks * self.nwarps + lanes // WARP
        # vs the previous write.
        conflict = (
            self._unsynced(shadow.w_time[keys], shadow.w_block[keys], blocks)
            & (shadow.w_warp[keys] != gwarp)
            & ~(atomic & shadow.w_atomic[keys])
        )
        if conflict.any():
            self._report_conflict(
                "write-write-hazard", instr, buf, space, blocks, lanes,
                addrs, shadow.w_lane[keys], shadow.w_block[keys], conflict,
            )
        # vs the previous reads (both tracked reader slots).
        for r_time, r_lane, r_warp, r_block in (
            (shadow.r_time, shadow.r_lane, shadow.r_warp, shadow.r_block),
            (shadow.r2_time, shadow.r2_lane, shadow.r2_warp, shadow.r2_block),
        ):
            conflict = (
                self._unsynced(r_time[keys], r_block[keys], blocks)
                & (r_warp[keys] != gwarp)
            )
            if conflict.any():
                self._report_conflict(
                    "read-write-hazard", instr, buf, space, blocks, lanes,
                    addrs, r_lane[keys], r_block[keys], conflict,
                )
        # A write supersedes the location's history.
        shadow.w_time[keys] = self.t
        shadow.w_lane[keys] = lanes
        shadow.w_warp[keys] = gwarp
        shadow.w_block[keys] = blocks
        shadow.w_atomic[keys] = atomic
        shadow.r_time[keys] = 0
        shadow.r2_time[keys] = 0

    def _check_read(self, instr, shadow, keys, blocks, lanes, addrs,
                    atomic, space) -> None:
        gwarp = blocks * self.nwarps + lanes // WARP
        conflict = (
            self._unsynced(shadow.w_time[keys], shadow.w_block[keys], blocks)
            & (shadow.w_warp[keys] != gwarp)
            & ~(atomic & shadow.w_atomic[keys])
        )
        if conflict.any():
            self._report_conflict(
                "read-write-hazard", instr, instr.buf, space, blocks, lanes,
                addrs, shadow.w_lane[keys], shadow.w_block[keys], conflict,
            )
        # Track the read: newest in slot 1, shifting a different-warp
        # predecessor to slot 2 so a later writer sees both.
        shift = (shadow.r_time[keys] > 0) & (shadow.r_warp[keys] != gwarp)
        for dst, src in (
            (shadow.r2_time, shadow.r_time), (shadow.r2_lane, shadow.r_lane),
            (shadow.r2_warp, shadow.r_warp), (shadow.r2_block, shadow.r_block),
        ):
            dst[keys] = np.where(shift, src[keys], dst[keys])
        shadow.r_time[keys] = self.t
        shadow.r_lane[keys] = lanes
        shadow.r_warp[keys] = gwarp
        shadow.r_block[keys] = blocks
