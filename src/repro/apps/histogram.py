"""Histogram built on the shared-atomic qualifier (Sections I, III-B).

Histogramming is the paper's motivating application for atomic
instructions on shared memory ([12], [13]): per-block *privatized*
histograms live in shared memory, updated with shared atomics, and are
merged into the global histogram at block end. The alternative —
updating global memory directly — avoids the privatization but pays
global atomic contention per element.

Both strategies are provided:

* ``strategy="shared"`` — the DSL codelet declares
  ``__shared _atomicAdd int hist[BINS]`` and the shared-atomic AST pass
  rewrites the ``+=`` into shared atomics (the paper's Section III-B
  pipeline, applied to a second application);
* ``strategy="global"`` — every element update is a device-scope global
  atomic.

Use :class:`Histogram` for end-to-end runs; see
``benchmarks/bench_histogram.py`` for the shared-vs-global study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen.compiler import CodeletToVIR, GlobalView
from ..core.atomics_shared import apply_shared_atomics
from ..gpusim.engine import Executor
from ..lang import analyze_source
from ..vir import Imm, IRBuilder, Kernel, KernelStep, MemsetStep, Plan

_STRATEGIES = ("shared", "global")


def histogram_source(bins: int) -> str:
    """The DSL codelet: one element per thread, shared-atomic updates."""
    return f"""
__codelet __coop __tag(hist_shared)
int histogram(const Array<1,int> in) {{
  Vector vt();
  __shared _atomicAdd int hist[{bins}];
  if (vt.ThreadId() < in.Size()) {{
    int bin = in[vt.ThreadId()] % {bins};
    hist[bin] += 1;
  }}
  return 0;
}}
"""


@dataclass
class Histogram:
    """End-to-end histogram over int32 keys (bin = key % bins)."""

    bins: int = 64
    block: int = 256
    strategy: str = "shared"
    coarsen: int = 1  # elements per thread

    def __post_init__(self):
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.bins < 1 or self.bins > 4096:
            raise ValueError(f"bins must be in [1, 4096], got {self.bins}")
        if self.block % 32 or not 32 <= self.block <= 1024:
            raise ValueError(f"bad block size {self.block}")
        if self.coarsen < 1:
            raise ValueError("coarsen must be >= 1")
        if self.strategy == "shared" and self.coarsen != 1:
            raise ValueError(
                "the privatized (shared) strategy processes one element per "
                "thread; use strategy='global' for coarsening"
            )

    # -- plan construction ------------------------------------------------

    def build_plan(self, n: int) -> Plan:
        if n < 1:
            raise ValueError(f"histogram needs n >= 1, got {n}")
        if self.strategy == "shared":
            kernel = self._build_shared_kernel()
        else:
            kernel = self._build_global_kernel()
        per_block = self.block * self.coarsen
        grid = -(-n // per_block)
        plan = Plan(
            name=f"histogram_{self.strategy}",
            steps=[
                MemsetStep("hist", 0),
                KernelStep(
                    kernel,
                    grid=grid,
                    block=self.block,
                    args={"n": n},
                    buffers={"in": "in", "hist": "hist"},
                ),
            ],
            scratch={"hist": self.bins},
            result_buffer="hist",
            meta={"dtype": "float64", "bins": self.bins,
                  "strategy": self.strategy},
        )
        plan.validate()
        return plan

    def _build_shared_kernel(self) -> Kernel:
        """Privatized histogram: DSL codelet -> shared-atomic pass -> VIR."""
        analyzed = analyze_source(histogram_source(self.bins), "histogram.tgm")
        info = analyzed.codelets[0]
        transformed = apply_shared_atomics(info.codelet)

        b = IRBuilder()
        tid = b.special("tid")
        gbase, kcount = self._grid_view(b)
        binding = GlobalView(
            buf="in", base=gbase, stride=Imm(1), size=kcount,
            size_static=self.block,
        )
        compiler = CodeletToVIR(
            b, transformed.codelet, binding, identity=0.0, prefix="h"
        )
        compiler.compile()
        shared = compiler.shared_decls
        # merge the privatized histogram into global memory
        merge_idx = b.mov(tid)
        cond = b.fresh("hm_c")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("lt", merge_idx, Imm(self.bins), dst=cond)
        with loop.body:
            value = b.ld_shared(shared[0].name, merge_idx)
            b.atom_global("add", "hist", merge_idx, value)
            b.binop("add", merge_idx, Imm(self.block), dst=merge_idx)
        return Kernel(
            name="histogram_shared",
            params=["n"],
            buffers=["in", "hist"],
            shared=shared,
            body=b.finish(),
            meta={"load_pattern": "scalar", "app": "histogram"},
        )

    def _build_global_kernel(self) -> Kernel:
        """Direct global atomics, one per element (no privatization)."""
        b = IRBuilder()
        gbase, kcount = self._grid_view(b)
        tid = b.special("tid")
        j = b.mov(tid)
        cond = b.fresh("hg_c")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("lt", j, kcount, dst=cond)
        with loop.body:
            idx = b.binop("add", gbase, j)
            key = b.ld_global("in", idx)
            bin_reg = b.binop("mod", key, Imm(self.bins))
            b.atom_global("add", "hist", bin_reg, Imm(1.0))
            b.binop("add", j, Imm(self.block), dst=j)
        return Kernel(
            name="histogram_global",
            params=["n"],
            buffers=["in", "hist"],
            shared=[],
            body=b.finish(),
            meta={"load_pattern": "scalar", "app": "histogram"},
        )

    def _grid_view(self, b):
        ctaid = b.special("ctaid")
        n_reg = b.ld_param("n")
        per_block = self.block * self.coarsen
        gbase = b.binop("mul", ctaid, Imm(per_block))
        remaining = b.binop("sub", n_reg, gbase)
        clamped = b.binop("max", remaining, Imm(0))
        kcount = b.binop("min", clamped, Imm(per_block))
        return gbase, kcount

    # -- execution -----------------------------------------------------------

    def run(self, keys: np.ndarray):
        """Compute the histogram functionally; returns int64 counts."""
        keys = np.ascontiguousarray(keys, dtype=np.int32)
        if keys.ndim != 1 or keys.size == 0:
            raise ValueError("run() needs a non-empty 1-D int array")
        plan = self.build_plan(keys.size)
        executor = Executor()
        executor.device.upload("in", keys)
        profile = executor.run_plan(plan)
        counts = executor.device.download("hist").astype(np.int64)
        return counts, profile

    def time(self, n: int, arch) -> float:
        """Modelled wall time of the histogram on one architecture."""
        from ..gpusim import get_architecture, plan_time
        from ..gpusim.device import Device

        arch = arch if not isinstance(arch, str) else get_architecture(arch)
        plan = self.build_plan(n)
        device = Device()
        device.alloc("in", n, dtype=np.int32)
        executor = Executor(device=device)
        grid = plan.kernel_steps()[0].grid
        sample = None if grid <= 64 else 3
        profile = executor.run_plan(plan, sample_limit=sample)
        return plan_time(profile, arch, num_memsets=1)


def reference_histogram(keys: np.ndarray, bins: int) -> np.ndarray:
    """numpy reference used by tests and benches."""
    return np.bincount(np.asarray(keys, dtype=np.int64) % bins, minlength=bins)
