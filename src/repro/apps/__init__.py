"""Applications built on the framework (the paper's motivating uses)."""

from .histogram import Histogram, histogram_source, reference_histogram
from .scan import Scan

__all__ = ["Histogram", "Scan", "histogram_source", "reference_histogram"]
