"""Inclusive prefix sum (scan) — the paper's other motivating algorithm.

Section I names Scan [14] (with Histogram) as a fundamental building
block that parallel reduction enables. This module implements a full
device-wide inclusive scan on the simulator substrate, with the two
block-scan strategies the paper's instruction-set discussion contrasts:

* ``strategy="shared"`` — classic Kogge-Stone scan through shared
  memory (a barrier per step, the pre-Kepler idiom);
* ``strategy="shuffle"`` — warp scan via ``__shfl_up`` register
  exchanges (Section II-A-1's warp shuffle instructions), warp totals
  combined through a small shared array.

The device-wide scan is the standard three-kernel pipeline:
block scans + block sums → scan of block sums → offset add-back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.engine import Executor
from ..vir import Imm, IRBuilder, Kernel, KernelStep, Plan, SharedDecl

_STRATEGIES = ("shared", "shuffle")
_WARP = 32


def _emit_block_scan_shared(b, val, block):
    """Kogge-Stone inclusive scan of one value per thread (shared mem)."""
    tid = b.special("tid")
    b.st_shared("scan_smem", tid, val)
    b.bar()
    offset = b.mov(Imm(1))
    cond = b.fresh("ks_c")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("lt", offset, block, dst=cond)
    with loop.body:
        take = b.binop("ge", tid, offset)
        with b.if_(take):
            left = b.ld_shared("scan_smem", b.binop("sub", tid, offset))
            b.binop("add", val, left, dst=val)
        b.bar()
        b.st_shared("scan_smem", tid, val)
        b.bar()
        b.binop("mul", offset, Imm(2), dst=offset)
    return val, [SharedDecl("scan_smem", block)]


def _emit_block_scan_shuffle(b, val, block):
    """Warp scan with __shfl_up, then scan of warp totals (cf. [18])."""
    tid = b.special("tid")
    lane = b.special("laneid")
    warp = b.special("warpid")
    warps = block // _WARP

    offset = b.mov(Imm(1))
    cond = b.fresh("ws_c")
    loop = b.while_(cond)
    with loop.cond:
        b.binop("lt", offset, Imm(_WARP), dst=cond)
    with loop.body:
        shifted = b.shfl(val, "up", offset, width=_WARP)
        take = b.binop("ge", lane, offset)
        with b.if_(take):
            b.binop("add", val, shifted, dst=val)
        b.binop("mul", offset, Imm(2), dst=offset)

    # last lane of each warp publishes the warp total
    is_last = b.binop("eq", lane, Imm(_WARP - 1))
    with b.if_(is_last):
        b.st_shared("warp_totals", warp, val)
    b.bar()

    # exclusive scan of warp totals, serially by thread 0 (warps <= 32)
    is_zero = b.binop("eq", tid, 0)
    with b.if_(is_zero):
        running = b.mov(Imm(0.0))
        index = b.mov(Imm(0))
        cond2 = b.fresh("wt_c")
        loop2 = b.while_(cond2)
        with loop2.cond:
            b.binop("lt", index, Imm(warps), dst=cond2)
        with loop2.body:
            total = b.ld_shared("warp_totals", index)
            b.st_shared("warp_offsets", index, running)
            b.binop("add", running, total, dst=running)
            b.binop("add", index, Imm(1), dst=index)
    b.bar()
    warp_offset = b.ld_shared("warp_offsets", warp)
    b.binop("add", val, warp_offset, dst=val)
    return val, [SharedDecl("warp_totals", warps), SharedDecl("warp_offsets", warps)]


@dataclass
class Scan:
    """Device-wide inclusive prefix sum over float32 values."""

    block: int = 256
    strategy: str = "shuffle"

    def __post_init__(self):
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.block % 32 or not 32 <= self.block <= 1024:
            raise ValueError(f"bad block size {self.block}")

    # -- kernels ----------------------------------------------------------

    def _build_block_scan_kernel(self) -> Kernel:
        b = IRBuilder()
        tid = b.special("tid")
        ctaid = b.special("ctaid")
        n_reg = b.ld_param("n")
        gid = b.binop("add", b.binop("mul", ctaid, Imm(self.block)), tid)
        in_range = b.binop("lt", gid, n_reg)
        val = b.mov(Imm(0.0))
        with b.if_(in_range):
            loaded = b.ld_global("in", gid)
            b.mov(loaded, dst=val)
        if self.strategy == "shared":
            val, shared = _emit_block_scan_shared(b, val, self.block)
        else:
            val, shared = _emit_block_scan_shuffle(b, val, self.block)
        with b.if_(in_range):
            b.st_global("out", gid, val)
        is_last_thread = b.binop("eq", tid, Imm(self.block - 1))
        with b.if_(is_last_thread):
            b.st_global("block_sums", ctaid, val)
        return Kernel(
            name=f"scan_block_{self.strategy}",
            params=["n"],
            buffers=["in", "out", "block_sums"],
            shared=shared,
            body=b.finish(),
            meta={"load_pattern": "scalar", "app": "scan",
                  "uses_shuffle": self.strategy == "shuffle"},
        )

    def _build_sums_scan_kernel(self, grid: int) -> Kernel:
        """Single-block scan of the per-block sums (thread-coarsened)."""
        b = IRBuilder()
        tid = b.special("tid")
        count = b.ld_param("count")
        chunk = b.ld_param("chunk")
        # thread t serially scans sums[t*chunk : (t+1)*chunk) in place,
        # recording its chunk total
        start = b.binop("mul", tid, chunk)
        end_raw = b.binop("add", start, chunk)
        end = b.binop("min", end_raw, count)
        running = b.mov(Imm(0.0))
        i = b.mov(start)
        cond = b.fresh("sc_c")
        loop = b.while_(cond)
        with loop.cond:
            b.binop("lt", i, end, dst=cond)
        with loop.body:
            value = b.ld_global("block_sums", i)
            b.binop("add", running, value, dst=running)
            b.st_global("block_sums", i, running)
            b.binop("add", i, Imm(1), dst=i)
        # scan the per-thread chunk totals across the block; the scan
        # mutates its input register, so keep a copy of the own total
        own_total = b.mov(running)
        total, shared = _emit_block_scan_shared(b, running, self.block)
        # chunk offset = inclusive-scan value minus own chunk total
        offset = b.binop("sub", total, own_total)
        # add the offset back to this thread's chunk
        j = b.mov(start)
        cond2 = b.fresh("sc2_c")
        loop2 = b.while_(cond2)
        with loop2.cond:
            b.binop("lt", j, end, dst=cond2)
        with loop2.body:
            value = b.ld_global("block_sums", j)
            b.st_global("block_sums", j, b.binop("add", value, offset))
            b.binop("add", j, Imm(1), dst=j)
        return Kernel(
            name="scan_block_sums",
            params=["count", "chunk"],
            buffers=["block_sums"],
            shared=shared,
            body=b.finish(),
            meta={"load_pattern": "scalar", "app": "scan"},
        )

    def _build_offset_kernel(self) -> Kernel:
        b = IRBuilder()
        tid = b.special("tid")
        ctaid = b.special("ctaid")
        n_reg = b.ld_param("n")
        gid = b.binop("add", b.binop("mul", ctaid, Imm(self.block)), tid)
        in_range = b.binop("lt", gid, n_reg)
        not_first = b.binop("gt", ctaid, 0)
        apply = b.binop("land", in_range, not_first)
        with b.if_(apply):
            prev = b.binop("sub", ctaid, Imm(1))
            offset = b.ld_global("block_sums", prev)
            value = b.ld_global("out", gid)
            b.st_global("out", gid, b.binop("add", value, offset))
        return Kernel(
            name="scan_add_offsets",
            params=["n"],
            buffers=["out", "block_sums"],
            shared=[],
            body=b.finish(),
            meta={"load_pattern": "scalar", "app": "scan"},
        )

    # -- plan / execution -----------------------------------------------------

    def build_plan(self, n: int) -> Plan:
        if n < 1:
            raise ValueError(f"scan needs n >= 1, got {n}")
        grid = -(-n // self.block)
        max_sums = self.block * self.block  # one coarsened single block
        if grid > max_sums:
            raise ValueError(
                f"scan supports up to {max_sums * self.block} elements at "
                f"block={self.block}; got n={n}"
            )
        chunk = -(-grid // self.block)
        steps = [
            KernelStep(
                self._build_block_scan_kernel(),
                grid=grid,
                block=self.block,
                args={"n": n},
                buffers={"in": "in", "out": "out", "block_sums": "block_sums"},
            ),
            KernelStep(
                self._build_sums_scan_kernel(grid),
                grid=1,
                block=self.block,
                args={"count": grid, "chunk": chunk},
                buffers={"block_sums": "block_sums"},
            ),
            KernelStep(
                self._build_offset_kernel(),
                grid=grid,
                block=self.block,
                args={"n": n},
                buffers={"out": "out", "block_sums": "block_sums"},
            ),
        ]
        plan = Plan(
            name=f"scan_{self.strategy}",
            steps=steps,
            scratch={"out": n, "block_sums": grid},
            result_buffer="out",
            result_index=n - 1,
            meta={"dtype": "float32", "strategy": self.strategy},
        )
        plan.validate()
        return plan

    def run(self, data: np.ndarray):
        """Inclusive scan; returns (scanned array, profile)."""
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 1 or data.size == 0:
            raise ValueError("run() needs a non-empty 1-D array")
        plan = self.build_plan(data.size)
        executor = Executor()
        executor.device.upload("in", data)
        profile = executor.run_plan(plan)
        return executor.device.download("out"), profile

    def time(self, n: int, arch) -> float:
        """Modelled wall time of the device-wide scan."""
        from ..gpusim import get_architecture, plan_time
        from ..gpusim.device import Device

        arch = arch if not isinstance(arch, str) else get_architecture(arch)
        plan = self.build_plan(n)
        device = Device()
        device.alloc("in", n, dtype=np.float32)
        executor = Executor(device=device)
        grid = max(step.grid for step in plan.kernel_steps())
        sample = None if grid <= 64 else 3
        profile = executor.run_plan(plan, sample_limit=sample)
        return plan_time(profile, arch)
